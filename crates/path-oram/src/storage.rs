//! Pluggable untrusted external memory holding the encrypted ORAM tree.
//!
//! The protocol only ever assumes `ReadBucket`/`WriteBucket` on untrusted
//! storage (§2), so the tree's home is a seam: the [`TreeStore`] trait
//! describes bucket-slot get/put over the `bucket_bytes` stride (plus the
//! batched whole-path access the one-pass seal/decrypt pipeline uses), with
//! three implementations:
//!
//! * [`MemStore`] — the original flat zeroed arena.  This is the hot-path
//!   store: the backend keeps its zero-copy access to the arena, so putting
//!   the trait in front costs the memory path nothing.
//! * [`FileStore`] — a sparse file addressed with positional I/O
//!   ([`std::os::unix::fs::FileExt`]), laid out with the subtree layout of
//!   Ren et al. \[26\] ([`dram_sim::SubtreeLayout`]) so a root-to-leaf path
//!   falls into at most ⌈levels/k⌉ contiguous extents.  Capacity is bounded
//!   by disk, not RAM, and the tree survives process exit.
//! * [`TieredStore`] — the treetop split of the two: the top `K` tree
//!   levels (the buckets *every* access touches — the paper's treetop
//!   observation, §5.1) live in a RAM arena while levels ≥ `K` spill to a
//!   whole-tree [`FileStore`] underneath, with `K` derived from a byte
//!   budget ([`treetop_levels_for_budget`]).  See the type-level docs for
//!   the tier invariants and the WAL-exemption argument.
//!
//! [`TreeStorage`] is the concrete enum the backend holds (three-variant
//! static dispatch; no boxing on the hot path).  All stores expose the same
//! *active-adversary* API the threat model needs (§2): flipping bits,
//! replaying stale buckets, and rolling back bucket seeds — for the file
//! store these tamper with the actual bytes on disk.
//!
//! Where this module sits in the stack — and how a path access flows
//! through it — is mapped end to end in `docs/ARCHITECTURE.md` at the
//! workspace root.
//!
//! With a [`Durability`] discipline other than `None`, the file store keeps
//! a write-ahead log (see [`crate::wal`]): every path writeback is appended
//! to `tree<label>.wal` before the tree file is touched, the log is folded
//! into the `tree<label>.meta` checkpoint every `checkpoint_interval`
//! writebacks, and [`FileStore::open`] replays the checksum-valid log tail
//! past the last checkpoint — so a kill at any instant recovers to a
//! consistent prefix of the access history.
//!
//! # What the file store does and does not leak
//!
//! File offsets are a deterministic function of bucket indices, exactly as
//! arena offsets were: an observer of file I/O sees the same
//! one-path-read-one-path-write trace per access that a DRAM adversary saw.
//! Obliviousness is unchanged.  What the file store adds is *persistence
//! residue*: bucket ciphertexts outlive the process, so the snapshot
//! machinery (and the operator) must treat tree files as untrusted
//! ciphertext, which they already are in the threat model.

use crate::error::OramError;
use crate::params::OramParams;
use crate::snapshot::{self, SnapReader};
use crate::wal::{self, Durability, Wal};
use dram_sim::SubtreeLayout;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Levels per subtree (`k`) of the file layout.  Four levels pack 15 buckets
/// per subtree — with the paper's 320-byte buckets that is one ~4.7 KB
/// extent, about one OS page run per touched subtree.
pub const FILE_SUBTREE_LEVELS: u32 = 4;

/// State-file kind byte of a tree metadata file (see [`crate::snapshot`]).
const TREE_META_KIND: u8 = 0x10;

/// Writebacks between automatic WAL checkpoints (see
/// [`FileStore::checkpoint`]).  At the paper's ~320-byte buckets and
/// ~20-level paths this folds the log roughly every 6 MB, keeping replay
/// time and log residue bounded without making checkpoint fsyncs a
/// per-access cost.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1024;

/// Where a backend keeps its ORAM tree.
///
/// Construction-time knob, threaded from `OramBuilder::storage` through the
/// frontends to [`TreeStorage::create`].  Backends without untrusted tree
/// storage (e.g. the flat insecure baseline) ignore it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageKind {
    /// The in-memory arena ([`MemStore`]); the default.
    Mem,
    /// A file-backed tree ([`FileStore`]) living in the given directory.
    /// Constructing a *fresh* instance truncates any tree files already
    /// there; resuming a snapshot reopens them in place.
    File {
        /// Directory holding the tree files (`tree<label>.oram` /
        /// `tree<label>.meta`).
        dir: PathBuf,
    },
    /// A file-backed tree in a unique temporary directory that is deleted
    /// when the store is dropped.  This is what `ORAM_STORAGE=file` resolves
    /// to: every test/benchmark instance gets its own throwaway tree files.
    TempFile,
    /// A tiered tree ([`TieredStore`]) living in the given directory: the
    /// top levels in a RAM arena (as many as `memory_budget` bytes allow,
    /// see [`treetop_levels_for_budget`]), everything deeper in the same
    /// on-disk format as [`StorageKind::File`].
    Tiered {
        /// Directory holding the tree files (same layout as
        /// [`StorageKind::File`]; a tiered snapshot can be resumed by any
        /// store kind and vice versa).
        dir: PathBuf,
        /// Treetop byte budget: the top `K` levels are pinned in RAM for
        /// the largest `K` with `(2^K - 1) * bucket_bytes ≤ memory_budget`.
        memory_budget: u64,
    },
    /// A tiered tree in a unique temporary directory that is deleted when
    /// the store is dropped.  This is what `ORAM_STORAGE=tiered` resolves
    /// to, with the budget taken from `ORAM_MEMORY_BUDGET` (or
    /// [`DEFAULT_MEMORY_BUDGET`]).
    TempTiered {
        /// Treetop byte budget (see [`StorageKind::Tiered`]).
        memory_budget: u64,
    },
}

/// Monotonic discriminator for [`StorageKind::TempFile`] directories.
static TEMP_STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Treetop byte budget used when a tiered kind is requested without an
/// explicit budget (`ORAM_STORAGE=tiered` with `ORAM_MEMORY_BUDGET` unset):
/// 64 MiB.  Generous enough to hold every test-sized tree entirely in RAM
/// and roughly a third of the paper's 1 M-block design-point tree; the
/// arena never allocates more than the tree actually needs.
pub const DEFAULT_MEMORY_BUDGET: u64 = 64 << 20;

impl StorageKind {
    /// Parses an `ORAM_STORAGE`-style selector: `mem` (or empty) selects
    /// [`StorageKind::Mem`], `file` selects [`StorageKind::TempFile`],
    /// `tiered` selects [`StorageKind::TempTiered`] with the given budget
    /// (or [`DEFAULT_MEMORY_BUDGET`]).  Matching is ASCII-case-insensitive.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] for any other value — an unrecognised
    /// selector is a configuration mistake and must fail loudly, not fall
    /// back to the memory store and silently un-test what the caller asked
    /// to test.
    pub fn parse(value: &str, memory_budget: Option<u64>) -> Result<StorageKind, OramError> {
        let v = value.trim();
        if v.is_empty() || v.eq_ignore_ascii_case("mem") {
            Ok(StorageKind::Mem)
        } else if v.eq_ignore_ascii_case("file") {
            Ok(StorageKind::TempFile)
        } else if v.eq_ignore_ascii_case("tiered") {
            Ok(StorageKind::TempTiered {
                memory_budget: memory_budget.unwrap_or(DEFAULT_MEMORY_BUDGET),
            })
        } else {
            Err(OramError::Storage {
                detail: format!(
                    "unknown ORAM_STORAGE value {value:?}: expected \"mem\", \"file\" \
                     or \"tiered\""
                ),
            })
        }
    }

    /// Parses an `ORAM_MEMORY_BUDGET`-style byte count: a plain integer,
    /// optionally suffixed `k`/`m`/`g` for KiB/MiB/GiB (case-insensitive).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] for anything else.
    pub fn parse_memory_budget(value: &str) -> Result<u64, OramError> {
        let v = value.trim();
        let (digits, shift) = match v.as_bytes().last() {
            Some(b'k' | b'K') => (&v[..v.len() - 1], 10),
            Some(b'm' | b'M') => (&v[..v.len() - 1], 20),
            Some(b'g' | b'G') => (&v[..v.len() - 1], 30),
            _ => (v, 0),
        };
        digits
            .trim()
            .parse::<u64>()
            .ok()
            .and_then(|n| n.checked_shl(shift).filter(|s| s >> shift == n))
            .ok_or_else(|| OramError::Storage {
                detail: format!(
                    "invalid ORAM_MEMORY_BUDGET value {value:?}: expected a byte count \
                     like 8388608, 8192k, 96m or 1g"
                ),
            })
    }

    /// Resolves the ambient default: `ORAM_STORAGE` selects the kind via
    /// [`StorageKind::parse`] (with the treetop budget from
    /// `ORAM_MEMORY_BUDGET`); unset selects [`StorageKind::Mem`].  This is
    /// how the CI file- and tiered-storage test legs run the whole suite
    /// over the other stores without touching call sites.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised `ORAM_STORAGE` or unparsable
    /// `ORAM_MEMORY_BUDGET` value: both are operator configuration errors,
    /// and silently falling back to the memory store would un-test exactly
    /// what the operator asked to test.
    pub fn from_env() -> StorageKind {
        let budget = match std::env::var("ORAM_MEMORY_BUDGET") {
            Ok(v) => Some(Self::parse_memory_budget(&v).unwrap_or_else(|e| panic!("{e}"))),
            Err(_) => None,
        };
        match std::env::var("ORAM_STORAGE") {
            Ok(v) => Self::parse(&v, budget).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => StorageKind::Mem,
        }
    }

    /// A storage kind rooted under `name` within this one: directory-backed
    /// stores descend into a subdirectory (the per-shard wiring of
    /// `build_sharded`/`build_service`), memory and temp stores are
    /// unaffected (each temp store is unique already).  Tiered kinds keep
    /// their budget: every shard owns an independent tree, so each gets the
    /// full treetop budget for its own (smaller) tree.
    pub fn subdir(&self, name: &str) -> StorageKind {
        match self {
            StorageKind::File { dir } => StorageKind::File {
                dir: dir.join(name),
            },
            StorageKind::Tiered { dir, memory_budget } => StorageKind::Tiered {
                dir: dir.join(name),
                memory_budget: *memory_budget,
            },
            other => other.clone(),
        }
    }

    /// Whether this kind keeps the tree in files.
    pub fn is_file_backed(&self) -> bool {
        !matches!(self, StorageKind::Mem)
    }

    /// One-byte tag recorded in snapshots (temp stores persist as plain
    /// directory-rooted ones: the snapshot directory *is* their new home).
    pub fn tag(&self) -> u8 {
        match self {
            StorageKind::Mem => 0,
            StorageKind::File { .. } | StorageKind::TempFile => 1,
            StorageKind::Tiered { .. } | StorageKind::TempTiered { .. } => 2,
        }
    }

    /// Inverse of [`StorageKind::tag`] for the budget-free tags, rooting
    /// file-backed kinds at `dir`.  Tag 2 (tiered) carries a budget field
    /// in snapshots and must go through [`StorageKind::load`].
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] for an unknown or budget-carrying tag.
    pub fn from_tag(tag: u8, dir: &Path) -> Result<StorageKind, OramError> {
        match tag {
            0 => Ok(StorageKind::Mem),
            1 => Ok(StorageKind::File {
                dir: dir.to_path_buf(),
            }),
            2 => Err(OramError::Snapshot {
                detail: "storage kind tag 2 (tiered) carries a budget field; \
                         decode it with StorageKind::load"
                    .into(),
            }),
            other => Err(OramError::Snapshot {
                detail: format!("unknown storage kind tag {other}"),
            }),
        }
    }

    /// Appends this kind's snapshot encoding to `out`: the one-byte
    /// [`StorageKind::tag`], followed (for tiered kinds only) by the
    /// treetop budget as a little-endian `u64`.  Old snapshots — written
    /// before tiered storage existed — decode unchanged: the budget field
    /// exists only behind tag 2, which they never wrote.
    pub fn save(&self, out: &mut Vec<u8>) {
        snapshot::put_u8(out, self.tag());
        if let StorageKind::Tiered { memory_budget, .. }
        | StorageKind::TempTiered { memory_budget } = self
        {
            snapshot::put_u64(out, *memory_budget);
        }
    }

    /// Inverse of [`StorageKind::save`], rooting directory-backed kinds at
    /// `dir` (the snapshot directory).
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on an unknown tag or truncated encoding.
    pub fn load(r: &mut SnapReader<'_>, dir: &Path) -> Result<StorageKind, OramError> {
        let tag = r.u8()?;
        if tag == 2 {
            Ok(StorageKind::Tiered {
                dir: dir.to_path_buf(),
                memory_budget: r.u64()?,
            })
        } else {
            Self::from_tag(tag, dir)
        }
    }
}

/// The storage seam: bucket-slot get/put over the `bucket_bytes` stride,
/// batched whole-path access, the active-adversary tampering API, and
/// snapshot persistence.
///
/// A bucket that has never been written reads as all zero bytes; the
/// initialised bitmap tells the backend which buckets to skip.  All methods
/// are indexed by the *linear* (heap-order) bucket index of
/// [`crate::tree::bucket_linear_index`]; where buckets land physically
/// (arena offset, file offset under the subtree layout) is the store's
/// business.
pub trait TreeStore: std::fmt::Debug + Send {
    /// Number of buckets.
    fn num_buckets(&self) -> usize;

    /// Serialised bucket size in bytes.
    fn bucket_bytes(&self) -> usize;

    /// Whether a bucket has ever been written.
    fn is_initialized(&self, index: u64) -> bool;

    /// Copies the raw (encrypted) image of a bucket into `out`, which must
    /// be exactly `bucket_bytes` long.  Uninitialised buckets read as zero
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError>;

    /// Writes the raw image of a bucket, marking it initialised.  `image`
    /// must be exactly `bucket_bytes` long.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError>;

    /// Batched span read: copies every *initialised* bucket of `indices`
    /// into `buf` at stride `level * bucket_bytes`.  Slots of uninitialised
    /// buckets are left untouched (the caller skips them via
    /// [`TreeStore::is_initialized`]).  This is the read half of the
    /// one-pass path pipeline: the caller decrypts the whole buffer in one
    /// batched cipher pass afterwards.  The default reads bucket by bucket;
    /// the file store overrides it to coalesce the path into its subtree
    /// extents (one positional read per extent).  Takes `&mut self` so
    /// overrides can stage through a reusable scratch buffer.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        let bb = self.bucket_bytes();
        for (level, &index) in indices.iter().enumerate() {
            if self.is_initialized(index) {
                self.read_bucket_into(index, &mut buf[level * bb..(level + 1) * bb])?;
            }
        }
        Ok(())
    }

    /// Batched span write: writes every bucket of `indices` from `buf` at
    /// stride `level * bucket_bytes`, marking all of them initialised — the
    /// write half of the pipeline, called once per eviction after the
    /// batched sealing pass.  Writes stay one positional write per bucket
    /// even on the file store: a path's buckets are interleaved with
    /// *other* paths' buckets inside each subtree extent, so an
    /// extent-sized write would clobber neighbours (reads have no such
    /// hazard, which is why only they coalesce).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        let bb = self.bucket_bytes();
        for (level, &index) in indices.iter().enumerate() {
            self.write_bucket(index, &buf[level * bb..(level + 1) * bb])?;
        }
        Ok(())
    }

    /// Total bytes currently resident (diagnostics): initialised buckets
    /// times the bucket size.
    fn resident_bytes(&self) -> u64;

    // ------------------------------------------------------------------
    // Active-adversary API (§2): these model a malicious data centre.
    // ------------------------------------------------------------------

    /// Flips the bits of `mask` at `offset` within bucket `index`; returns
    /// `false` (and does nothing) if the bucket is uninitialised or the
    /// offset is out of range.  For the file store this flips the byte on
    /// disk.
    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool;

    /// Takes a snapshot of a bucket's current ciphertext (for replay
    /// attacks).  An uninitialised bucket snapshots as an empty vector.
    fn snapshot_bucket(&self, index: u64) -> Vec<u8>;

    /// Replays a previously snapshotted ciphertext into a bucket.  An empty
    /// snapshot restores the bucket to its uninitialised (all-zero) state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length is neither zero nor a full bucket
    /// image (test-harness contract, mirroring the original arena API).
    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]);

    /// Rolls back the plaintext seed field in a bucket header by `delta`
    /// (the seed is stored in the clear, §6.4).  Returns `false` if the
    /// bucket is uninitialised.
    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool;

    // ------------------------------------------------------------------
    // Persistence.
    // ------------------------------------------------------------------

    /// Persists the tree into `dir` as `tree<label>.oram` (bucket images at
    /// their subtree-layout offsets; one common format for both stores, so
    /// a memory-built snapshot can resume file-backed and vice versa) plus
    /// `tree<label>.meta` (geometry + initialised bitmap, digest-sealed).
    /// A file store persisting into its own live directory just flushes.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError>;
}

/// The subtree layout every tree file uses (base 0, `k` =
/// [`FILE_SUBTREE_LEVELS`] capped at the tree height).
fn file_layout(params: &OramParams) -> SubtreeLayout {
    SubtreeLayout::new(
        params.levels(),
        params.bucket_bytes() as u64,
        FILE_SUBTREE_LEVELS.min(params.levels()),
        0,
    )
}

/// Bytes of one full subtree extent under `layout`: the coalescing window
/// (and staging-buffer size) of the file store's path reads.
fn extent_bytes(layout: &SubtreeLayout, bucket_bytes: usize) -> usize {
    (((1usize << layout.subtree_levels()) - 1) * bucket_bytes).max(bucket_bytes)
}

/// Tree file path for `label` under `dir`.
fn tree_file_path(dir: &Path, label: u32) -> PathBuf {
    dir.join(format!("tree{label}.oram"))
}

/// Tree metadata file path for `label` under `dir`.
fn tree_meta_path(dir: &Path, label: u32) -> PathBuf {
    dir.join(format!("tree{label}.meta"))
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> OramError {
    OramError::Storage {
        detail: format!("{context} {}: {e}", path.display()),
    }
}

/// Bucket-granular variant of [`io_err`]: records the operation *and* the
/// bucket index, so a recovery-suite failure names the exact slot (e.g.
/// `write_path bucket 12 @ tree0.oram: ...`).  Only runs on the error path,
/// so the allocation never touches a successful access.
fn io_err_bucket(op: &str, index: u64, path: &Path, e: std::io::Error) -> OramError {
    OramError::Storage {
        detail: format!("{op} bucket {index} @ {}: {e}", path.display()),
    }
}

/// Serialises a tree metadata file: geometry, the initialised bitmap, and
/// the WAL sequence number the tree file is known to cover (`wal_seq`; 0
/// for trees that never logged).
fn write_tree_meta(
    path: &Path,
    num_buckets: usize,
    bucket_bytes: usize,
    subtree_levels: u32,
    initialized: &[u64],
    wal_seq: u64,
) -> Result<(), OramError> {
    let mut payload = Vec::with_capacity(40 + initialized.len() * 8);
    snapshot::put_u64(&mut payload, num_buckets as u64);
    snapshot::put_u64(&mut payload, bucket_bytes as u64);
    snapshot::put_u32(&mut payload, subtree_levels);
    snapshot::put_u64(&mut payload, initialized.len() as u64);
    for &word in initialized {
        snapshot::put_u64(&mut payload, word);
    }
    snapshot::put_u64(&mut payload, wal_seq);
    snapshot::write_state_file(path, TREE_META_KIND, &payload)
}

/// Reads and validates a tree metadata file against the expected geometry,
/// returning the initialised bitmap and the checkpointed WAL sequence
/// number.
fn read_tree_meta(
    path: &Path,
    num_buckets: usize,
    bucket_bytes: usize,
    expected_subtree_levels: u32,
) -> Result<(Vec<u64>, u64), OramError> {
    let (kind, payload) = snapshot::read_state_file(path)?;
    if kind != TREE_META_KIND {
        return Err(OramError::Snapshot {
            detail: format!("{} is not a tree metadata file", path.display()),
        });
    }
    let mut r = SnapReader::new(&payload);
    let file_buckets = r.u64()? as usize;
    let file_bucket_bytes = r.u64()? as usize;
    let file_subtree_levels = r.u32()?;
    if file_buckets != num_buckets || file_bucket_bytes != bucket_bytes {
        return Err(OramError::Snapshot {
            detail: format!(
                "tree geometry mismatch: snapshot has {file_buckets} buckets x \
                 {file_bucket_bytes} B, expected {num_buckets} x {bucket_bytes} B"
            ),
        });
    }
    // Every bucket's file offset is a function of the layout's k; a
    // mismatch here would read all buckets from the wrong offsets, so it
    // must be a hard error, not a recorded-and-ignored field.
    if file_subtree_levels != expected_subtree_levels {
        return Err(OramError::Snapshot {
            detail: format!(
                "tree layout mismatch: snapshot uses {file_subtree_levels} levels per subtree, \
                 this build expects {expected_subtree_levels}"
            ),
        });
    }
    let words = r.len(num_buckets.div_ceil(64))?;
    if words != num_buckets.div_ceil(64) {
        return Err(OramError::Snapshot {
            detail: format!(
                "bitmap has {words} words, expected {}",
                num_buckets.div_ceil(64)
            ),
        });
    }
    let mut bitmap = Vec::with_capacity(words);
    for _ in 0..words {
        bitmap.push(r.u64()?);
    }
    let wal_seq = r.u64()?;
    r.finish()?;
    Ok((bitmap, wal_seq))
}

#[inline]
fn bit_get(bitmap: &[u64], index: u64) -> bool {
    bitmap[index as usize / 64] >> (index % 64) & 1 == 1
}

#[inline]
fn bit_set(bitmap: &mut [u64], index: u64) {
    bitmap[index as usize / 64] |= 1u64 << (index % 64);
}

#[inline]
fn bit_clear(bitmap: &mut [u64], index: u64) {
    bitmap[index as usize / 64] &= !(1u64 << (index % 64));
}

fn popcount_bytes(bitmap: &[u64], bucket_bytes: usize) -> u64 {
    let buckets: u64 = bitmap.iter().map(|w| u64::from(w.count_ones())).sum();
    buckets * bucket_bytes as u64
}

// =====================================================================
// MemStore
// =====================================================================

/// The in-memory tree store: one flat, contiguous arena of encrypted bucket
/// images.
///
/// Bucket `i` occupies `[i * bucket_bytes, (i + 1) * bucket_bytes)` of the
/// arena, so a path read is `L + 1` slice views into one allocation.  The
/// arena is allocated zeroed in one shot; on the platforms we target the
/// allocator services large zeroed requests with untouched copy-on-write
/// pages, so a mostly-empty tree costs physical memory only for the buckets
/// actually written.
///
/// Beyond the [`TreeStore`] contract, `MemStore` exposes the zero-copy
/// arena accessors ([`MemStore::read_bucket`], [`MemStore::bucket_slot_mut`],
/// [`MemStore::arena_mut`]) the backend's hot path is built on.
#[derive(Debug, Clone)]
pub struct MemStore {
    arena: Vec<u8>,
    /// One bit per bucket: has this bucket ever been written?
    initialized: Vec<u64>,
    bucket_bytes: usize,
    num_buckets: usize,
    levels: u32,
    /// The WAL sequence number this store's contents cover: 0 for a fresh
    /// arena, the recovered sequence number after [`MemStore::load`].  The
    /// memory store never logs (there is nothing to make durable), but it
    /// carries the counter so a file-backed WAL'd snapshot can resume
    /// in-memory and the controller barrier check still lines up.
    wal_seq: u64,
}

impl MemStore {
    /// Allocates storage for every bucket of the tree described by `params`.
    /// All buckets start uninitialised (and all-zero).
    pub fn new(params: &OramParams) -> Self {
        let num_buckets = params.num_buckets() as usize;
        let bucket_bytes = params.bucket_bytes();
        Self {
            arena: vec![0u8; num_buckets * bucket_bytes],
            initialized: vec![0u64; num_buckets.div_ceil(64)],
            bucket_bytes,
            num_buckets,
            levels: params.levels(),
            wal_seq: 0,
        }
    }

    /// Loads a memory store from tree files persisted under `dir` (the
    /// common on-disk format, see [`TreeStore::persist_to`]).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure, [`OramError::Snapshot`] /
    /// [`OramError::IntegrityViolation`] for bad metadata.
    pub fn load(params: &OramParams, dir: &Path, label: u32) -> Result<Self, OramError> {
        let mut store = Self::new(params);
        let meta = tree_meta_path(dir, label);
        let (initialized, meta_seq) = read_tree_meta(
            &meta,
            store.num_buckets,
            store.bucket_bytes,
            FILE_SUBTREE_LEVELS.min(params.levels()),
        )?;
        store.initialized = initialized;
        store.wal_seq = meta_seq;
        let tree_path = tree_file_path(dir, label);
        let file = File::open(&tree_path).map_err(|e| io_err("opening", &tree_path, e))?;
        let layout = file_layout(params);
        for index in 0..store.num_buckets as u64 {
            if !bit_get(&store.initialized, index) {
                continue;
            }
            let offset = layout.linear_bucket_address(index);
            let range = store.range(index);
            file.read_exact_at(&mut store.arena[range], offset)
                .map_err(|e| io_err_bucket("load bucket", index, &tree_path, e))?;
        }
        // If the snapshot directory carries a WAL (a WAL'd file store that
        // crashed or simply never re-checkpointed), replay its checksum-valid
        // tail into the arena so the memory resume sees the same recovered
        // tree a file resume would.
        let num_buckets = store.num_buckets as u64;
        let bucket_bytes = store.bucket_bytes;
        let wal_path = wal::wal_file_path(dir, label);
        let summary = wal::replay(&wal_path, bucket_bytes, |seq, indices, images| {
            for (i, &index) in indices.iter().enumerate() {
                if index >= num_buckets {
                    return Err(OramError::Storage {
                        detail: format!(
                            "WAL record {seq} names bucket {index} outside the \
                             {num_buckets}-bucket tree @ {}",
                            wal_path.display()
                        ),
                    });
                }
                let range = store.range(index);
                store.arena[range]
                    .copy_from_slice(&images[i * bucket_bytes..(i + 1) * bucket_bytes]);
                bit_set(&mut store.initialized, index);
            }
            Ok(())
        })?;
        if let Some(s) = summary {
            if s.header_valid {
                store.wal_seq = store.wal_seq.max(s.last_seq);
            }
        }
        Ok(store)
    }

    /// The WAL sequence number this store's contents cover (see the field
    /// docs; always 0 for a store that was never loaded from a WAL'd
    /// snapshot).
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    // lint: ct-scope, no-alloc
    #[inline]
    fn range(&self, index: u64) -> std::ops::Range<usize> {
        let start = index as usize * self.bucket_bytes;
        start..start + self.bucket_bytes
    }

    /// Reads the raw (encrypted) image of a bucket: a `bucket_bytes`-long
    /// view into the arena.  A bucket that has never been written reads as
    /// all zero bytes; check [`TreeStore::is_initialized`] to distinguish.
    #[inline]
    pub fn read_bucket(&self, index: u64) -> &[u8] {
        &self.arena[self.range(index)]
    }

    /// Mutable view of a bucket's arena slot, marking the bucket
    /// initialised.  This is the zero-copy write path: the backend
    /// serialises and seals the eviction output directly into the slot.
    #[inline]
    pub fn bucket_slot_mut(&mut self, index: u64) -> &mut [u8] {
        self.mark_initialized(index);
        let range = self.range(index);
        &mut self.arena[range]
    }

    /// Byte offset of a bucket's image within the arena (see
    /// [`MemStore::arena_mut`]).
    #[inline]
    pub fn bucket_offset(&self, index: u64) -> usize {
        index as usize * self.bucket_bytes
    }

    /// The whole arena, mutable.  This is the batched-cipher hook: the
    /// backend serialises a path's buckets into their slots via
    /// [`MemStore::bucket_slot_mut`] (which marks them initialised), then
    /// seals all of them in one keystream pass over this slice using
    /// [`MemStore::bucket_offset`]-based spans.  Does **not** mark anything
    /// initialised.
    #[inline]
    pub fn arena_mut(&mut self) -> &mut [u8] {
        &mut self.arena
    }

    fn mark_initialized(&mut self, index: u64) {
        bit_set(&mut self.initialized, index);
    }
    // lint: end
}

impl TreeStore for MemStore {
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    #[inline]
    fn is_initialized(&self, index: u64) -> bool {
        bit_get(&self.initialized, index)
    }

    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        out.copy_from_slice(self.read_bucket(index));
        Ok(())
    }

    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        assert_eq!(
            image.len(),
            self.bucket_bytes,
            "bucket image must be exactly bucket_bytes long"
        );
        self.bucket_slot_mut(index).copy_from_slice(image);
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        popcount_bytes(&self.initialized, self.bucket_bytes)
    }

    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if index as usize >= self.num_buckets
            || offset >= self.bucket_bytes
            || !self.is_initialized(index)
        {
            return false;
        }
        let start = self.range(index).start;
        self.arena[start + offset] ^= mask;
        true
    }

    fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        if self.is_initialized(index) {
            self.read_bucket(index).to_vec()
        } else {
            Vec::new()
        }
    }

    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        assert!(
            snapshot.is_empty() || snapshot.len() == self.bucket_bytes,
            "snapshot must be a full bucket image"
        );
        if snapshot.is_empty() {
            let range = self.range(index);
            self.arena[range].fill(0);
            bit_clear(&mut self.initialized, index);
        } else {
            self.write_bucket(index, snapshot)
                .expect("arena writes are infallible");
        }
    }

    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        if !self.is_initialized(index) {
            return false;
        }
        let start = self.range(index).start;
        let header = &mut self.arena[start..start + 8];
        let seed = u64::from_le_bytes(header.try_into().expect("8-byte header"));
        header.copy_from_slice(&seed.wrapping_sub(delta).to_le_bytes());
        true
    }

    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let tree_path = tree_file_path(dir, label);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tree_path)
            .map_err(|e| io_err("creating", &tree_path, e))?;
        // The tree file carries bucket images at their subtree-layout
        // offsets: the arena is linear heap order, so this is a permuting
        // copy of the initialised buckets into a sparse file.
        let layout = SubtreeLayout::new(
            self.levels,
            self.bucket_bytes as u64,
            FILE_SUBTREE_LEVELS.min(self.levels),
            0,
        );
        file.set_len(layout.total_bytes())
            .map_err(|e| io_err("sizing", &tree_path, e))?;
        for index in 0..self.num_buckets as u64 {
            if !self.is_initialized(index) {
                continue;
            }
            let offset = layout.linear_bucket_address(index);
            file.write_all_at(self.read_bucket(index), offset)
                .map_err(|e| io_err_bucket("persist bucket", index, &tree_path, e))?;
        }
        file.sync_all()
            .map_err(|e| io_err("syncing", &tree_path, e))?;
        // A stale WAL beside the target would replay over the fresh tree on
        // resume; this snapshot is complete, so drop it.
        let _ = std::fs::remove_file(wal::wal_file_path(dir, label));
        write_tree_meta(
            &tree_meta_path(dir, label),
            self.num_buckets,
            self.bucket_bytes,
            FILE_SUBTREE_LEVELS.min(self.levels),
            &self.initialized,
            self.wal_seq,
        )
    }
}

// =====================================================================
// FileStore
// =====================================================================

/// The file-backed tree store: bucket images in one sparse file at their
/// [`dram_sim::SubtreeLayout`] offsets, accessed with positional I/O.
///
/// The initialised bitmap lives in memory while the store is live and is
/// written to the sidecar `tree<label>.meta` file by
/// [`TreeStore::persist_to`] and by WAL checkpoints.  Crash consistency
/// depends on the [`Durability`] discipline the store was built with:
/// under [`Durability::None`] the tree is consistent only at successful
/// `persist` boundaries (the pre-WAL behaviour); under `Batch`/`Strict`
/// every writeback is logged to `tree<label>.wal` before it is applied and
/// [`FileStore::open`] replays the checksum-valid log tail, so a kill at
/// any instant recovers to a consistent prefix of the access history.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    tree_path: PathBuf,
    dir: PathBuf,
    label: u32,
    layout: SubtreeLayout,
    initialized: Vec<u64>,
    bucket_bytes: usize,
    num_buckets: usize,
    /// Reusable staging buffer for coalesced path reads, sized to one
    /// subtree extent (`(2^k - 1) * bucket_bytes`); allocated once so the
    /// steady-state access path stays allocation-free.
    extent_buf: Vec<u8>,
    /// Set for [`StorageKind::TempFile`] stores: the directory is removed
    /// on drop.
    remove_on_drop: bool,
    /// The write-ahead log; `None` under [`Durability::None`], in which
    /// case the whole logging/checkpointing machinery is inert.
    wal: Option<Wal>,
    /// Sequence number of the last writeback applied to the tree (== the
    /// last WAL append when logging, frozen at its recovered value when
    /// not).
    wal_seq: u64,
    /// Writebacks since the last checkpoint fold.
    records_since_checkpoint: u64,
    /// Auto-checkpoint cadence in writebacks.
    checkpoint_interval: u64,
    /// Fault injection (kill-point suite): remaining bucket writes the
    /// tree file will accept before a simulated kill.
    fail_tree_writes_after: Option<u64>,
}

impl FileStore {
    /// Creates a **fresh** file-backed tree under `dir` (truncating any
    /// existing `tree<label>` files there).  Under a logged [`Durability`]
    /// the store also writes an initial (empty) checkpoint and opens a
    /// fresh WAL, so a kill before the first explicit `persist` already
    /// recovers instead of leaving an unreadable directory.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create(
        params: &OramParams,
        dir: &Path,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let tree_path = tree_file_path(dir, label);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tree_path)
            .map_err(|e| io_err("creating", &tree_path, e))?;
        let layout = file_layout(params);
        // A sparse file: the full tree geometry is reserved in the address
        // space, but unwritten regions occupy no disk blocks (the file
        // analogue of the arena's copy-on-write zero pages).
        file.set_len(layout.total_bytes())
            .map_err(|e| io_err("sizing", &tree_path, e))?;
        // A fresh tree owes nothing to any previous occupant of the
        // directory: a leftover log would replay a stranger's buckets.
        let _ = std::fs::remove_file(wal::wal_file_path(dir, label));
        let num_buckets = params.num_buckets() as usize;
        let extent_buf = vec![0u8; extent_bytes(&layout, params.bucket_bytes())];
        let mut store = Self {
            file,
            tree_path,
            dir: dir.to_path_buf(),
            label,
            layout,
            initialized: vec![0u64; num_buckets.div_ceil(64)],
            bucket_bytes: params.bucket_bytes(),
            num_buckets,
            extent_buf,
            remove_on_drop: false,
            wal: None,
            wal_seq: 0,
            records_since_checkpoint: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            fail_tree_writes_after: None,
        };
        if durability.is_logged() {
            store.checkpoint()?;
            store.wal = Some(Wal::create(
                &store.dir,
                label,
                store.bucket_bytes,
                0,
                durability,
            )?);
        }
        Ok(store)
    }

    /// Creates a fresh file-backed tree in a unique temporary directory
    /// that is removed when the store is dropped.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create_temp(
        params: &OramParams,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        let unique = format!(
            "oram-tree-{}-{}",
            std::process::id(),
            TEMP_STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        let mut store = Self::create(params, &dir, label, durability)?;
        store.remove_on_drop = true;
        Ok(store)
    }

    /// Reopens a persisted file-backed tree in place: the snapshot
    /// directory becomes (or stays) the live storage directory.
    ///
    /// Recovery happens here: if a `tree<label>.wal` is present its
    /// checksum-valid tail is replayed into the tree (stopping cleanly at
    /// the first torn or invalid record — the expected shape of a crash),
    /// the recovered state is folded into a fresh checkpoint, and — under
    /// a logged [`Durability`] — a new log generation is opened.  Replay is
    /// idempotent (records are full bucket post-images), so it does not
    /// matter how much of the log the tree file had already absorbed before
    /// the kill.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure, [`OramError::Snapshot`] /
    /// [`OramError::IntegrityViolation`] for missing or corrupt metadata.
    pub fn open(
        params: &OramParams,
        dir: &Path,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        let num_buckets = params.num_buckets() as usize;
        let bucket_bytes = params.bucket_bytes();
        let (mut initialized, meta_seq) = read_tree_meta(
            &tree_meta_path(dir, label),
            num_buckets,
            bucket_bytes,
            FILE_SUBTREE_LEVELS.min(params.levels()),
        )?;
        let tree_path = tree_file_path(dir, label);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&tree_path)
            .map_err(|e| io_err("opening", &tree_path, e))?;
        let layout = file_layout(params);
        let actual = file
            .metadata()
            .map_err(|e| io_err("inspecting", &tree_path, e))?
            .len();
        if actual < layout.total_bytes() {
            return Err(OramError::Snapshot {
                detail: format!(
                    "tree file {} is short: {actual} bytes, expected {}",
                    tree_path.display(),
                    layout.total_bytes()
                ),
            });
        }
        // Replay the checksum-valid WAL tail (if any) over the tree file.
        let wal_path = wal::wal_file_path(dir, label);
        let summary = wal::replay(&wal_path, bucket_bytes, |seq, indices, images| {
            for (i, &index) in indices.iter().enumerate() {
                if index >= num_buckets as u64 {
                    return Err(OramError::Storage {
                        detail: format!(
                            "WAL record {seq} names bucket {index} outside the \
                             {num_buckets}-bucket tree @ {}",
                            wal_path.display()
                        ),
                    });
                }
                file.write_all_at(
                    &images[i * bucket_bytes..(i + 1) * bucket_bytes],
                    layout.linear_bucket_address(index),
                )
                .map_err(|e| io_err_bucket("replay bucket", index, &tree_path, e))?;
                bit_set(&mut initialized, index);
            }
            Ok(())
        })?;
        let mut wal_seq = meta_seq;
        if let Some(s) = &summary {
            if s.header_valid {
                wal_seq = wal_seq.max(s.last_seq);
            }
        }
        let extent_buf = vec![0u8; extent_bytes(&layout, bucket_bytes)];
        let mut store = Self {
            file,
            tree_path,
            dir: dir.to_path_buf(),
            label,
            layout,
            initialized,
            bucket_bytes,
            num_buckets,
            extent_buf,
            remove_on_drop: false,
            wal: None,
            wal_seq,
            records_since_checkpoint: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            fail_tree_writes_after: None,
        };
        if summary.is_some() {
            // Fold whatever the log contributed into a fresh checkpoint so
            // the recovered state stands on its own...
            store.checkpoint()?;
            if !durability.is_logged() {
                // ...and drop the log when the new discipline won't keep one.
                let _ = std::fs::remove_file(&wal_path);
            }
        }
        if durability.is_logged() {
            store.wal = Some(Wal::create(
                &store.dir,
                label,
                bucket_bytes,
                store.wal_seq,
                durability,
            )?);
        }
        Ok(store)
    }

    /// The directory holding this store's tree files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last writeback applied to this tree.
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Whether this store keeps a write-ahead log.
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Folds the applied log into the on-disk checkpoint: flush the tree
    /// file, rewrite `tree<label>.meta` (atomically, see
    /// [`crate::snapshot::write_state_file`]) to cover sequence number
    /// `wal_seq`, then truncate the log back to a bare header.  A crash
    /// between any two of these steps is safe: before the meta write the
    /// old checkpoint + full log still recover everything; after it the new
    /// checkpoint covers every record the truncation is about to drop.
    ///
    /// Runs automatically every `checkpoint_interval` writebacks; callable
    /// directly for an explicit fold.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    // lint: no-panic
    pub fn checkpoint(&mut self) -> Result<(), OramError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("syncing", &self.tree_path, e))?;
        write_tree_meta(
            &tree_meta_path(&self.dir, self.label),
            self.num_buckets,
            self.bucket_bytes,
            self.layout.subtree_levels(),
            &self.initialized,
            self.wal_seq,
        )?;
        if let Some(wal) = self.wal.as_mut() {
            wal.truncate_to(self.wal_seq)?;
        }
        self.records_since_checkpoint = 0;
        Ok(())
    }
    // lint: end

    /// Overrides the auto-checkpoint cadence (clamped to ≥ 1).  Test
    /// harness hook; the default is [`DEFAULT_CHECKPOINT_INTERVAL`].
    #[doc(hidden)]
    pub fn set_checkpoint_interval(&mut self, records: u64) {
        self.checkpoint_interval = records.max(1);
    }

    /// Fault-injection hook (kill-point suite): permit at most `bytes`
    /// further WAL bytes, then fail appends leaving a torn record.  No-op
    /// without a WAL.
    #[doc(hidden)]
    pub fn set_fail_after_wal_bytes(&mut self, bytes: u64) {
        if let Some(wal) = self.wal.as_mut() {
            wal.set_crash_after_bytes(bytes);
        }
    }

    /// Fault-injection hook (kill-point suite): permit at most `writes`
    /// further bucket writes to the tree file, then fail.
    #[doc(hidden)]
    pub fn set_fail_after_tree_writes(&mut self, writes: u64) {
        self.fail_tree_writes_after = Some(writes);
    }

    #[inline]
    fn offset(&self, index: u64) -> u64 {
        self.layout.linear_bucket_address(index)
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.remove_on_drop {
            // Best-effort cleanup of a throwaway temp store.
            let _ = std::fs::remove_file(&self.tree_path);
            let _ = std::fs::remove_file(tree_meta_path(&self.dir, self.label));
            let _ = std::fs::remove_file(wal::wal_file_path(&self.dir, self.label));
            let _ = std::fs::remove_dir(&self.dir);
        }
    }
}

impl TreeStore for FileStore {
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    #[inline]
    fn is_initialized(&self, index: u64) -> bool {
        bit_get(&self.initialized, index)
    }

    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        debug_assert_eq!(out.len(), self.bucket_bytes);
        self.file
            .read_exact_at(out, self.offset(index))
            .map_err(|e| io_err_bucket("read_bucket", index, &self.tree_path, e))
    }

    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        assert_eq!(
            image.len(),
            self.bucket_bytes,
            "bucket image must be exactly bucket_bytes long"
        );
        if let Some(budget) = self.fail_tree_writes_after.as_mut() {
            if *budget == 0 {
                return Err(OramError::Storage {
                    detail: format!(
                        "injected crash before tree write of bucket {index} @ {}",
                        self.tree_path.display()
                    ),
                });
            }
            *budget -= 1;
        }
        self.file
            .write_all_at(image, self.offset(index))
            .map_err(|e| io_err_bucket("write_bucket", index, &self.tree_path, e))?;
        bit_set(&mut self.initialized, index);
        Ok(())
    }

    fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        // WAL-before-tree: the sealed path image is appended (and, per the
        // fsync discipline, made durable) before the first in-place tree
        // write starts.  A kill anywhere in here leaves either a torn log
        // record (the writeback never happened) or a complete one (replay
        // finishes the tree writes on open).
        if let Some(wal) = self.wal.as_mut() {
            self.wal_seq = wal.append(indices, buf)?;
        }
        let bb = self.bucket_bytes;
        for (level, &index) in indices.iter().enumerate() {
            self.write_bucket(index, &buf[level * bb..(level + 1) * bb])?;
        }
        if self.wal.is_some() {
            self.records_since_checkpoint += 1;
            if self.records_since_checkpoint >= self.checkpoint_interval {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        // Coalesced path read: sort the initialised buckets by file offset
        // and read each run that fits one subtree-extent window with a
        // single positional read.  Under the subtree layout every bucket of
        // a path lies inside its level-group's extent, so a root-to-leaf
        // path costs at most ⌈levels/k⌉ reads.  The window may cover
        // buckets of *other* paths; their bytes are staged and discarded,
        // never copied out.
        let bb = self.bucket_bytes;
        let window = self.extent_buf.len() as u64;
        // (file offset, level) per initialised bucket; paths are at most
        // `MAX_LEAF_LEVEL + 1` levels, far below this stack bound.
        let mut runs = [(0u64, 0usize); 64];
        let mut n = 0;
        for (level, &index) in indices.iter().enumerate() {
            if self.is_initialized(index) {
                runs[n] = (self.offset(index), level);
                n += 1;
            }
        }
        runs[..n].sort_unstable();
        let mut i = 0;
        while i < n {
            let start = runs[i].0;
            let mut j = i;
            while j + 1 < n && runs[j + 1].0 + bb as u64 - start <= window {
                j += 1;
            }
            let len = (runs[j].0 + bb as u64 - start) as usize;
            let chunk = &mut self.extent_buf[..len];
            self.file
                .read_exact_at(chunk, start)
                .map_err(|e| io_err("reading path extent from", &self.tree_path, e))?;
            for &(offset, level) in &runs[i..=j] {
                let rel = (offset - start) as usize;
                buf[level * bb..(level + 1) * bb].copy_from_slice(&chunk[rel..rel + bb]);
            }
            i = j + 1;
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        popcount_bytes(&self.initialized, self.bucket_bytes)
    }

    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if index as usize >= self.num_buckets
            || offset >= self.bucket_bytes
            || !self.is_initialized(index)
        {
            return false;
        }
        let pos = self.offset(index) + offset as u64;
        let mut byte = [0u8];
        if self.file.read_exact_at(&mut byte, pos).is_err() {
            return false;
        }
        byte[0] ^= mask;
        self.file.write_all_at(&byte, pos).is_ok()
    }

    fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        if !self.is_initialized(index) {
            return Vec::new();
        }
        let mut out = vec![0u8; self.bucket_bytes];
        self.read_bucket_into(index, &mut out)
            .expect("snapshotting an initialised bucket");
        out
    }

    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        assert!(
            snapshot.is_empty() || snapshot.len() == self.bucket_bytes,
            "snapshot must be a full bucket image"
        );
        if snapshot.is_empty() {
            let zeros = vec![0u8; self.bucket_bytes];
            self.file
                .write_all_at(&zeros, self.offset(index))
                .expect("zeroing a bucket on replay");
            bit_clear(&mut self.initialized, index);
        } else {
            self.write_bucket(index, snapshot)
                .expect("replaying a bucket image");
        }
    }

    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        if !self.is_initialized(index) {
            return false;
        }
        let pos = self.offset(index);
        let mut header = [0u8; 8];
        if self.file.read_exact_at(&mut header, pos).is_err() {
            return false;
        }
        let seed = u64::from_le_bytes(header);
        self.file
            .write_all_at(&seed.wrapping_sub(delta).to_le_bytes(), pos)
            .is_ok()
    }

    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let target = tree_file_path(dir, label);
        let in_place = match (
            std::fs::canonicalize(&target),
            std::fs::canonicalize(&self.tree_path),
        ) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
        if in_place {
            self.file
                .sync_all()
                .map_err(|e| io_err("syncing", &self.tree_path, e))?;
        } else {
            // Persisting into a different directory: copy the initialised
            // buckets into a fresh sparse file at the same offsets.
            let out = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&target)
                .map_err(|e| io_err("creating", &target, e))?;
            out.set_len(self.layout.total_bytes())
                .map_err(|e| io_err("sizing", &target, e))?;
            let mut buf = vec![0u8; self.bucket_bytes];
            for index in 0..self.num_buckets as u64 {
                if !self.is_initialized(index) {
                    continue;
                }
                self.read_bucket_into(index, &mut buf)?;
                out.write_all_at(&buf, self.offset(index))
                    .map_err(|e| io_err_bucket("persist bucket", index, &target, e))?;
            }
            out.sync_all().map_err(|e| io_err("syncing", &target, e))?;
            // The copy is complete as of wal_seq; a stale log beside the
            // target would replay foreign buckets over it on resume.
            let _ = std::fs::remove_file(wal::wal_file_path(dir, label));
        }
        // In place, the live WAL stays as is: replay is idempotent, and the
        // meta written below covers everything applied so far anyway.
        write_tree_meta(
            &tree_meta_path(dir, label),
            self.num_buckets,
            self.bucket_bytes,
            self.layout.subtree_levels(),
            &self.initialized,
            self.wal_seq,
        )
    }
}

// =====================================================================
// TieredStore
// =====================================================================

/// Number of tree levels a treetop byte budget pins in RAM: the largest
/// `K ≤ levels` with `(2^K - 1) * bucket_bytes ≤ memory_budget` (the top
/// `K` levels occupy linear bucket indices `0 .. 2^K - 1`).  `K = 0`
/// degenerates to a pure file store, `K = levels` to a RAM-resident tree
/// that only touches disk at checkpoints.
pub fn treetop_levels_for_budget(params: &OramParams, memory_budget: u64) -> u32 {
    let bucket_bytes = params.bucket_bytes() as u64;
    let mut k = 0u32;
    while k < params.levels() {
        let buckets = (1u64 << (k + 1)) - 1;
        if buckets.saturating_mul(bucket_bytes) > memory_budget {
            break;
        }
        k += 1;
    }
    k
}

/// The tiered tree store: the top `K` levels in a RAM arena, levels ≥ `K`
/// in a [`FileStore`] spanning the *whole* tree file.
///
/// The paper's treetop observation (§5.1) is that the top of the tree is
/// touched on **every** access — level `ℓ` has only `2^ℓ` buckets, so a
/// small, fixed byte budget pins the levels with all the reuse while the
/// exponentially larger bottom levels (with almost none) stay on disk.
/// Because a path's linear bucket indices are `2^ℓ - 1 ≤ index < 2^{ℓ+1}-1`
/// at level `ℓ`, "level < K" is exactly "linear index < 2^K - 1": tier
/// routing is one comparison, and a root-to-leaf path splits into a
/// contiguous arena prefix plus a contiguous file suffix.
///
/// # Tier invariants
///
/// * The inner [`FileStore`] is laid out for the **full** tree (same sparse
///   file, same subtree layout, same sidecar metadata as a pure file
///   store), so tiered snapshots stay interchangeable with both other
///   stores.  Treetop regions of the file are only guaranteed current at
///   checkpoint/persist boundaries.
/// * Between checkpoints the arena is authoritative for treetop buckets;
///   the dirty bitmap records which arena images the file does not have
///   yet.  [`TieredStore::checkpoint`] and [`TreeStore::persist_to`] flush
///   them before delegating to the file store.
/// * The initialised bitmap lives in the inner file store (one bitmap for
///   the whole tree), so metadata checkpoints cover both tiers.
///
/// # Why WAL exemption of the treetop is crash-safe
///
/// Deep writebacks go through [`FileStore::write_path`] and are logged
/// under a logged [`Durability`]; treetop writes land only in RAM and are
/// **not** logged — logging them would reintroduce the per-access I/O the
/// tier exists to remove.  Crash safety is preserved because recovery can
/// never *silently* serve a stale treetop: the controller snapshot records
/// the WAL sequence barrier at persist time, persist/checkpoint flush the
/// treetop before advertising that barrier, and
/// `PathOramBackend::load_controller_state` refuses any store whose
/// recovered sequence number differs from the barrier.  A kill between
/// persists therefore recovers to the last completed persist/checkpoint
/// (where the tiers were mutually consistent) or is rejected with a
/// descriptive error — never to a tree whose deep levels have advanced past
/// its treetop.
#[derive(Debug)]
pub struct TieredStore {
    /// The spill tier, spanning the whole tree file; also owns the
    /// initialised bitmap, the WAL and the checkpoint machinery.
    file: FileStore,
    /// The treetop arena: bucket `i < treetop_buckets` lives at
    /// `[i * bucket_bytes, (i+1) * bucket_bytes)`, exactly like a
    /// [`MemStore`] arena truncated to the top levels.
    top: Vec<u8>,
    /// One bit per treetop bucket: the arena image is newer than the tree
    /// file (cleared by [`TieredStore::checkpoint`]).
    top_dirty: Vec<u64>,
    /// `2^K - 1`: buckets with linear index below this live in the arena.
    treetop_buckets: u64,
    /// `K`, the number of RAM-resident levels.
    treetop_levels: u32,
    /// The byte budget `K` was derived from (echoed into snapshots by the
    /// config codecs).
    memory_budget: u64,
}

impl TieredStore {
    fn from_file(params: &OramParams, file: FileStore, memory_budget: u64) -> Self {
        let treetop_levels = treetop_levels_for_budget(params, memory_budget);
        let treetop_buckets =
            (((1u64 << treetop_levels) - 1) as usize).min(file.num_buckets) as u64;
        Self {
            top: vec![0u8; treetop_buckets as usize * file.bucket_bytes],
            top_dirty: vec![0u64; (treetop_buckets as usize).div_ceil(64)],
            treetop_buckets,
            treetop_levels,
            memory_budget,
            file,
        }
    }

    /// Creates a **fresh** tiered tree under `dir` (truncating any existing
    /// `tree<label>` files there); see [`FileStore::create`] for the
    /// durability semantics of the spill tier.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create(
        params: &OramParams,
        dir: &Path,
        label: u32,
        durability: Durability,
        memory_budget: u64,
    ) -> Result<Self, OramError> {
        let file = FileStore::create(params, dir, label, durability)?;
        Ok(Self::from_file(params, file, memory_budget))
    }

    /// Creates a fresh tiered tree in a unique temporary directory that is
    /// removed when the store is dropped.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create_temp(
        params: &OramParams,
        label: u32,
        durability: Durability,
        memory_budget: u64,
    ) -> Result<Self, OramError> {
        let file = FileStore::create_temp(params, label, durability)?;
        Ok(Self::from_file(params, file, memory_budget))
    }

    /// Reopens a persisted tree in place as a tiered store: the file tier
    /// recovers exactly as [`FileStore::open`] (WAL tail replay included),
    /// then the initialised treetop buckets are loaded from the tree file
    /// into the arena.  Tiered, file-backed and in-memory snapshots share
    /// one on-disk format, so any of them can be reopened tiered.
    ///
    /// # Errors
    ///
    /// As for [`FileStore::open`].
    pub fn open(
        params: &OramParams,
        dir: &Path,
        label: u32,
        durability: Durability,
        memory_budget: u64,
    ) -> Result<Self, OramError> {
        let file = FileStore::open(params, dir, label, durability)?;
        let mut store = Self::from_file(params, file, memory_budget);
        let bb = store.file.bucket_bytes;
        for index in 0..store.treetop_buckets {
            if !bit_get(&store.file.initialized, index) {
                continue;
            }
            let range = index as usize * bb..(index as usize + 1) * bb;
            store
                .file
                .file
                .read_exact_at(&mut store.top[range], store.file.offset(index))
                .map_err(|e| {
                    io_err_bucket("load treetop bucket", index, &store.file.tree_path, e)
                })?;
        }
        Ok(store)
    }

    /// The directory holding this store's tree files.
    pub fn dir(&self) -> &Path {
        self.file.dir()
    }

    /// Sequence number of the last *logged* writeback applied to this tree
    /// (treetop writes are WAL-exempt; see the type-level docs).
    pub fn wal_seq(&self) -> u64 {
        self.file.wal_seq()
    }

    /// Whether the spill tier keeps a write-ahead log.
    pub fn has_wal(&self) -> bool {
        self.file.has_wal()
    }

    /// Number of RAM-resident levels (`K`).
    pub fn treetop_levels(&self) -> u32 {
        self.treetop_levels
    }

    /// Number of RAM-resident buckets (`2^K - 1`).
    pub fn treetop_buckets(&self) -> u64 {
        self.treetop_buckets
    }

    /// The byte budget the treetop split was derived from.
    pub fn memory_budget(&self) -> u64 {
        self.memory_budget
    }

    #[inline]
    fn is_treetop(&self, index: u64) -> bool {
        index < self.treetop_buckets
    }

    // lint: ct-scope, no-alloc
    #[inline]
    fn top_range(&self, index: u64) -> std::ops::Range<usize> {
        let start = index as usize * self.file.bucket_bytes;
        start..start + self.file.bucket_bytes
    }
    // lint: end

    /// Writes every dirty (or, for `clear_dirty = false` callers on the
    /// `&self` persist path, every since-flush-dirty) treetop image into
    /// the tree file without touching the dirty bitmap.  Positional writes
    /// only, so it works from `&self`; idempotent, so leaving bits set and
    /// re-flushing later is safe.
    fn write_dirty_treetop_to_file(&self) -> Result<(), OramError> {
        let bb = self.file.bucket_bytes;
        for index in 0..self.treetop_buckets {
            if !bit_get(&self.top_dirty, index) {
                continue;
            }
            let image = &self.top[index as usize * bb..(index as usize + 1) * bb];
            self.file
                .file
                .write_all_at(image, self.file.offset(index))
                .map_err(|e| {
                    io_err_bucket("flush treetop bucket", index, &self.file.tree_path, e)
                })?;
        }
        Ok(())
    }

    /// Folds the treetop into the spill tier and checkpoints: flush every
    /// dirty arena image into the tree file, then run the file store's
    /// checkpoint (sync, metadata rewrite, WAL truncation — see
    /// [`FileStore::checkpoint`]).  After this returns, the on-disk state
    /// alone reconstructs both tiers.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<(), OramError> {
        self.write_dirty_treetop_to_file()?;
        self.top_dirty.fill(0);
        self.file.checkpoint()
    }

    /// See [`FileStore::set_checkpoint_interval`].
    #[doc(hidden)]
    pub fn set_checkpoint_interval(&mut self, records: u64) {
        self.file.set_checkpoint_interval(records);
    }

    /// See [`FileStore::set_fail_after_wal_bytes`].
    #[doc(hidden)]
    pub fn set_fail_after_wal_bytes(&mut self, bytes: u64) {
        self.file.set_fail_after_wal_bytes(bytes);
    }

    /// See [`FileStore::set_fail_after_tree_writes`].
    #[doc(hidden)]
    pub fn set_fail_after_tree_writes(&mut self, writes: u64) {
        self.file.set_fail_after_tree_writes(writes);
    }
}

impl TreeStore for TieredStore {
    fn num_buckets(&self) -> usize {
        self.file.num_buckets
    }

    fn bucket_bytes(&self) -> usize {
        self.file.bucket_bytes
    }

    #[inline]
    fn is_initialized(&self, index: u64) -> bool {
        bit_get(&self.file.initialized, index)
    }

    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        if self.is_treetop(index) {
            out.copy_from_slice(&self.top[self.top_range(index)]);
            Ok(())
        } else {
            self.file.read_bucket_into(index, out)
        }
    }

    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        if self.is_treetop(index) {
            assert_eq!(
                image.len(),
                self.file.bucket_bytes,
                "bucket image must be exactly bucket_bytes long"
            );
            let range = self.top_range(index);
            self.top[range].copy_from_slice(image);
            bit_set(&mut self.top_dirty, index);
            bit_set(&mut self.file.initialized, index);
            Ok(())
        } else {
            self.file.write_bucket(index, image)
        }
    }

    // lint: ct-scope, no-alloc
    fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        // A root-to-leaf path is a contiguous arena prefix (levels < K)
        // followed by a contiguous file suffix (levels ≥ K): serve the
        // prefix with memcpys, hand the suffix to the file store's
        // extent-coalescing read in one call.  Arbitrary (non-path) index
        // sets — the general trait contract — fall back to routed
        // per-bucket reads.
        let bb = self.file.bucket_bytes;
        let split = indices
            .iter()
            .position(|&i| !self.is_treetop(i))
            .unwrap_or(indices.len());
        for (level, &index) in indices[..split].iter().enumerate() {
            if self.is_initialized(index) {
                let range = self.top_range(index);
                buf[level * bb..(level + 1) * bb].copy_from_slice(&self.top[range]);
            }
        }
        let deep = &indices[split..];
        if deep.iter().all(|&i| !self.is_treetop(i)) {
            self.file.read_path_into(deep, &mut buf[split * bb..])
        } else {
            for (off, &index) in deep.iter().enumerate() {
                let level = split + off;
                if self.is_initialized(index) {
                    self.read_bucket_into(index, &mut buf[level * bb..(level + 1) * bb])?;
                }
            }
            Ok(())
        }
    }

    fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        // Mirror of `read_path_into`: arena prefix, then the deep suffix as
        // one file-store path write — which is where the WAL record is cut,
        // so the log carries only the spill tier's buckets (the treetop's
        // WAL exemption; see the type-level docs).
        let bb = self.file.bucket_bytes;
        let split = indices
            .iter()
            .position(|&i| !self.is_treetop(i))
            .unwrap_or(indices.len());
        for (level, &index) in indices[..split].iter().enumerate() {
            let range = self.top_range(index);
            self.top[range].copy_from_slice(&buf[level * bb..(level + 1) * bb]);
            bit_set(&mut self.top_dirty, index);
            bit_set(&mut self.file.initialized, index);
        }
        let deep = &indices[split..];
        if deep.is_empty() {
            Ok(())
        } else if deep.iter().all(|&i| !self.is_treetop(i)) {
            self.file.write_path(deep, &buf[split * bb..])
        } else {
            for (off, &index) in deep.iter().enumerate() {
                let level = split + off;
                self.write_bucket(index, &buf[level * bb..(level + 1) * bb])?;
            }
            Ok(())
        }
    }
    // lint: end

    fn resident_bytes(&self) -> u64 {
        popcount_bytes(&self.file.initialized, self.file.bucket_bytes)
    }

    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if self.is_treetop(index) {
            if offset >= self.file.bucket_bytes || !self.is_initialized(index) {
                return false;
            }
            let start = self.top_range(index).start;
            self.top[start + offset] ^= mask;
            bit_set(&mut self.top_dirty, index);
            true
        } else {
            self.file.tamper_xor(index, offset, mask)
        }
    }

    fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        if self.is_treetop(index) {
            if self.is_initialized(index) {
                self.top[self.top_range(index)].to_vec()
            } else {
                Vec::new()
            }
        } else {
            self.file.snapshot_bucket(index)
        }
    }

    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        if self.is_treetop(index) {
            assert!(
                snapshot.is_empty() || snapshot.len() == self.file.bucket_bytes,
                "snapshot must be a full bucket image"
            );
            let range = self.top_range(index);
            if snapshot.is_empty() {
                self.top[range].fill(0);
                bit_clear(&mut self.file.initialized, index);
                // The file may still hold stale bytes for this bucket, but
                // the cleared initialised bit masks them everywhere (reads,
                // loads, persisted bitmaps), matching MemStore semantics.
                bit_set(&mut self.top_dirty, index);
            } else {
                self.top[range].copy_from_slice(snapshot);
                bit_set(&mut self.top_dirty, index);
                bit_set(&mut self.file.initialized, index);
            }
        } else {
            self.file.replay_bucket(index, snapshot);
        }
    }

    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        if self.is_treetop(index) {
            if !self.is_initialized(index) {
                return false;
            }
            let start = self.top_range(index).start;
            let header = &mut self.top[start..start + 8];
            let seed = u64::from_le_bytes(header.try_into().expect("8-byte header"));
            header.copy_from_slice(&seed.wrapping_sub(delta).to_le_bytes());
            bit_set(&mut self.top_dirty, index);
            true
        } else {
            self.file.rollback_seed(index, delta)
        }
    }

    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        // Flush the treetop into the live tree file first (positional
        // writes work from `&self`; the dirty bitmap stays set, which is
        // harmless — re-flushing an image already in the file is
        // idempotent).  After that the inner file store holds the complete
        // tree and its persist logic covers both the in-place and the
        // copy-to-other-directory cases.
        self.write_dirty_treetop_to_file()?;
        self.file.persist_to(dir, label)
    }
}

// =====================================================================
// TreeStorage: the enum the backend holds.
// =====================================================================

/// Untrusted tree storage behind the [`TreeStore`] seam: the in-memory
/// arena, the file-backed store, or the tiered treetop split, dispatched
/// statically.
///
/// All trait methods are also available as inherent methods (delegating),
/// so existing call sites — in particular the adversary API used by tests
/// and examples — keep working without importing the trait.
// One instance exists per ORAM tree, so the size gap between the slim
// arena handle and the WAL-carrying file store is irrelevant; boxing the
// file variant would buy nothing but an extra indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TreeStorage {
    /// In-memory arena.
    Mem(MemStore),
    /// File-backed store.
    File(FileStore),
    /// Tiered treetop-in-RAM store.
    Tiered(TieredStore),
}

macro_rules! delegate {
    ($self:ident, $store:ident => $body:expr) => {
        match $self {
            TreeStorage::Mem($store) => $body,
            TreeStorage::File($store) => $body,
            TreeStorage::Tiered($store) => $body,
        }
    };
}

impl TreeStorage {
    /// Allocates in-memory storage for the tree described by `params`
    /// (back-compatible constructor; use [`TreeStorage::create`] to choose
    /// the store kind).
    pub fn new(params: &OramParams) -> Self {
        TreeStorage::Mem(MemStore::new(params))
    }

    /// Creates a fresh store of the given kind.  `label` distinguishes
    /// several trees sharing one directory (the recursive frontend's
    /// per-level ORAMs).  `durability` selects the WAL discipline for
    /// file-backed kinds; memory stores have nothing to log and ignore it.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure creating file-backed stores.
    pub fn create(
        params: &OramParams,
        kind: &StorageKind,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        Ok(match kind {
            StorageKind::Mem => TreeStorage::Mem(MemStore::new(params)),
            StorageKind::File { dir } => {
                TreeStorage::File(FileStore::create(params, dir, label, durability)?)
            }
            StorageKind::TempFile => {
                TreeStorage::File(FileStore::create_temp(params, label, durability)?)
            }
            StorageKind::Tiered { dir, memory_budget } => TreeStorage::Tiered(TieredStore::create(
                params,
                dir,
                label,
                durability,
                *memory_budget,
            )?),
            StorageKind::TempTiered { memory_budget } => TreeStorage::Tiered(
                TieredStore::create_temp(params, label, durability, *memory_budget)?,
            ),
        })
    }

    /// Opens a store over tree files persisted under `dir`: memory stores
    /// load the buckets into a fresh arena, file stores reopen the files in
    /// place (the snapshot directory becomes the live directory).  Either
    /// way, a checksum-valid WAL tail left behind by a crash is replayed
    /// first (see [`FileStore::open`]).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure, [`OramError::Snapshot`] /
    /// [`OramError::IntegrityViolation`] for missing or corrupt metadata.
    pub fn open_snapshot(
        params: &OramParams,
        kind: &StorageKind,
        dir: &Path,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        Ok(match kind {
            StorageKind::Mem => TreeStorage::Mem(MemStore::load(params, dir, label)?),
            StorageKind::File { dir: file_dir } => {
                TreeStorage::File(FileStore::open(params, file_dir, label, durability)?)
            }
            StorageKind::Tiered {
                dir: file_dir,
                memory_budget,
            } => TreeStorage::Tiered(TieredStore::open(
                params,
                file_dir,
                label,
                durability,
                *memory_budget,
            )?),
            StorageKind::TempFile | StorageKind::TempTiered { .. } => {
                return Err(OramError::Snapshot {
                    detail: "cannot resume a snapshot into a temporary store; \
                             use StorageKind::File, StorageKind::Tiered or \
                             StorageKind::Mem"
                        .into(),
                })
            }
        })
    }

    /// The memory store, if that is what this is — the backend's zero-copy
    /// fast path keys off this.
    #[inline]
    pub fn as_mem(&self) -> Option<&MemStore> {
        match self {
            TreeStorage::Mem(m) => Some(m),
            TreeStorage::File(_) | TreeStorage::Tiered(_) => None,
        }
    }

    /// Mutable variant of [`TreeStorage::as_mem`].
    #[inline]
    pub fn as_mem_mut(&mut self) -> Option<&mut MemStore> {
        match self {
            TreeStorage::Mem(m) => Some(m),
            TreeStorage::File(_) | TreeStorage::Tiered(_) => None,
        }
    }

    /// The tiered store, if that is what this is (diagnostics: treetop
    /// geometry introspection for tests and benchmarks).
    #[inline]
    pub fn as_tiered(&self) -> Option<&TieredStore> {
        match self {
            TreeStorage::Tiered(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the tree lives (at least partly) in files.
    pub fn is_file_backed(&self) -> bool {
        matches!(self, TreeStorage::File(_) | TreeStorage::Tiered(_))
    }

    // Inherent delegations so call sites don't need the trait in scope.

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        delegate!(self, s => TreeStore::num_buckets(s))
    }

    /// Serialised bucket size in bytes.
    pub fn bucket_bytes(&self) -> usize {
        delegate!(self, s => TreeStore::bucket_bytes(s))
    }

    /// Whether a bucket has ever been written.
    #[inline]
    pub fn is_initialized(&self, index: u64) -> bool {
        delegate!(self, s => s.is_initialized(index))
    }

    /// See [`TreeStore::read_bucket_into`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::read_bucket_into`].
    pub fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        delegate!(self, s => s.read_bucket_into(index, out))
    }

    /// See [`TreeStore::write_bucket`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::write_bucket`].
    pub fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        delegate!(self, s => s.write_bucket(index, image))
    }

    /// See [`TreeStore::read_path_into`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::read_path_into`].
    pub fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        delegate!(self, s => s.read_path_into(indices, buf))
    }

    /// See [`TreeStore::write_path`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::write_path`].
    pub fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        delegate!(self, s => s.write_path(indices, buf))
    }

    /// See [`TreeStore::resident_bytes`].
    pub fn resident_bytes(&self) -> u64 {
        delegate!(self, s => s.resident_bytes())
    }

    /// See [`TreeStore::tamper_xor`].
    pub fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        delegate!(self, s => s.tamper_xor(index, offset, mask))
    }

    /// See [`TreeStore::snapshot_bucket`].
    pub fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        delegate!(self, s => s.snapshot_bucket(index))
    }

    /// See [`TreeStore::replay_bucket`].
    pub fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        delegate!(self, s => s.replay_bucket(index, snapshot))
    }

    /// See [`TreeStore::rollback_seed`].
    pub fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        delegate!(self, s => s.rollback_seed(index, delta))
    }

    /// See [`TreeStore::persist_to`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::persist_to`].
    pub fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        delegate!(self, s => s.persist_to(dir, label))
    }

    /// Sequence number of the last writeback this store's contents cover
    /// (0 for stores that never logged; see [`FileStore::wal_seq`] and
    /// [`MemStore::wal_seq`]).  The controller barrier recorded in
    /// snapshots compares against this on resume.
    pub fn wal_seq(&self) -> u64 {
        match self {
            TreeStorage::Mem(m) => m.wal_seq(),
            TreeStorage::File(f) => f.wal_seq(),
            TreeStorage::Tiered(t) => t.wal_seq(),
        }
    }

    /// Explicit WAL checkpoint fold (see [`FileStore::checkpoint`] and
    /// [`TieredStore::checkpoint`]); a no-op for memory stores.
    ///
    /// # Errors
    ///
    /// As for [`FileStore::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), OramError> {
        match self {
            TreeStorage::Mem(_) => Ok(()),
            TreeStorage::File(f) => f.checkpoint(),
            TreeStorage::Tiered(t) => t.checkpoint(),
        }
    }

    /// See [`FileStore::set_checkpoint_interval`]; no-op for memory stores.
    #[doc(hidden)]
    pub fn set_checkpoint_interval(&mut self, records: u64) {
        match self {
            TreeStorage::Mem(_) => {}
            TreeStorage::File(f) => f.set_checkpoint_interval(records),
            TreeStorage::Tiered(t) => t.set_checkpoint_interval(records),
        }
    }

    /// See [`FileStore::set_fail_after_wal_bytes`]; no-op for memory stores.
    #[doc(hidden)]
    pub fn set_fail_after_wal_bytes(&mut self, bytes: u64) {
        match self {
            TreeStorage::Mem(_) => {}
            TreeStorage::File(f) => f.set_fail_after_wal_bytes(bytes),
            TreeStorage::Tiered(t) => t.set_fail_after_wal_bytes(bytes),
        }
    }

    /// See [`FileStore::set_fail_after_tree_writes`]; no-op for memory
    /// stores.
    #[doc(hidden)]
    pub fn set_fail_after_tree_writes(&mut self, writes: u64) {
        match self {
            TreeStorage::Mem(_) => {}
            TreeStorage::File(f) => f.set_fail_after_tree_writes(writes),
            TreeStorage::Tiered(t) => t.set_fail_after_tree_writes(writes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OramParams {
        OramParams::new(64, 16, 4)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oram-storage-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Runs the shared store-contract checks against any store.
    fn check_store_contract(s: &mut dyn TreeStore) {
        assert!(s.num_buckets() > 0);
        assert!(!s.is_initialized(0));
        let bb = s.bucket_bytes();
        let mut out = vec![0xFFu8; bb];
        s.read_bucket_into(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "uninitialised reads as zero");
        assert_eq!(s.resident_bytes(), 0);

        // Write/read round trip.
        let image = vec![0xCD; bb];
        s.write_bucket(3, &image).unwrap();
        assert!(s.is_initialized(3));
        assert!(!s.is_initialized(2));
        s.read_bucket_into(3, &mut out).unwrap();
        assert_eq!(out, image);
        assert_eq!(s.resident_bytes(), bb as u64);

        // Tampering.
        s.write_bucket(0, &vec![0u8; bb]).unwrap();
        assert!(s.tamper_xor(0, 10, 0xFF));
        s.read_bucket_into(0, &mut out).unwrap();
        assert_eq!(out[10], 0xFF);
        assert_eq!(out[9], 0x00);
        assert!(!s.tamper_xor(0, 1 << 20, 1));
        assert!(!s.tamper_xor(1, 0, 1));

        // Snapshot and replay.
        let old = vec![1u8; bb];
        let new = vec![2u8; bb];
        s.write_bucket(5, &old).unwrap();
        let snap = s.snapshot_bucket(5);
        s.write_bucket(5, &new).unwrap();
        s.replay_bucket(5, &snap);
        s.read_bucket_into(5, &mut out).unwrap();
        assert_eq!(out, old);

        // Empty replay uninitialises.
        let empty = s.snapshot_bucket(7);
        assert!(empty.is_empty());
        s.write_bucket(7, &vec![9u8; bb]).unwrap();
        s.replay_bucket(7, &empty);
        assert!(!s.is_initialized(7));
        s.read_bucket_into(7, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        // Seed rollback.
        let mut image = vec![0u8; bb];
        image[..8].copy_from_slice(&100u64.to_le_bytes());
        s.write_bucket(2, &image).unwrap();
        assert!(s.rollback_seed(2, 1));
        s.read_bucket_into(2, &mut out).unwrap();
        assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 99);
        assert!(!s.rollback_seed(6, 1));

        // Batched path access.
        let indices = [0u64, 2, 5];
        let mut buf = vec![0u8; 3 * bb];
        s.read_path_into(&indices, &mut buf).unwrap();
        s.read_bucket_into(0, &mut out).unwrap();
        assert_eq!(&buf[..bb], &out[..]);
        let patterned: Vec<u8> = (0..3 * bb).map(|i| (i % 251) as u8).collect();
        s.write_path(&indices, &patterned).unwrap();
        for (level, &idx) in indices.iter().enumerate() {
            s.read_bucket_into(idx, &mut out).unwrap();
            assert_eq!(out, &patterned[level * bb..(level + 1) * bb]);
            assert!(s.is_initialized(idx));
        }
    }

    #[test]
    fn mem_store_satisfies_the_contract() {
        let mut s = MemStore::new(&params());
        check_store_contract(&mut s);
    }

    #[test]
    fn file_store_satisfies_the_contract() {
        let mut s = FileStore::create_temp(&params(), 0, Durability::None).unwrap();
        check_store_contract(&mut s);
    }

    #[test]
    fn mem_store_zero_copy_accessors_still_work() {
        let p = params();
        let mut s = MemStore::new(&p);
        s.bucket_slot_mut(5)[0] = 0xAB;
        assert!(s.is_initialized(5));
        assert_eq!(s.read_bucket(5)[0], 0xAB);
        assert_eq!(s.bucket_offset(5), 5 * s.bucket_bytes());
        // Adjacent buckets sit back to back in the arena.
        for idx in 0..s.num_buckets() as u64 {
            let image = vec![idx as u8 + 1; s.bucket_bytes()];
            s.write_bucket(idx, &image).unwrap();
        }
        for idx in 0..s.num_buckets() as u64 {
            assert!(s.read_bucket(idx).iter().all(|&b| b == idx as u8 + 1));
        }
    }

    #[test]
    #[should_panic(expected = "bucket_bytes")]
    fn mem_store_rejects_wrong_size_image() {
        let mut s = MemStore::new(&params());
        let _ = s.write_bucket(0, &[0u8; 3]);
    }

    #[test]
    #[should_panic(expected = "bucket_bytes")]
    fn file_store_rejects_wrong_size_image() {
        let mut s = FileStore::create_temp(&params(), 0, Durability::None).unwrap();
        let _ = s.write_bucket(0, &[0u8; 3]);
    }

    #[test]
    fn stores_persist_into_a_common_interchangeable_format() {
        let p = params();
        let dir_a = temp_dir("interchange-a");
        let dir_b = temp_dir("interchange-b");

        // Populate a mem store and persist it.
        let mut mem = MemStore::new(&p);
        let image_a = vec![0xA1; mem.bucket_bytes()];
        let image_b = vec![0xB2; mem.bucket_bytes()];
        mem.write_bucket(1, &image_a).unwrap();
        mem.write_bucket(30, &image_b).unwrap();
        mem.persist_to(&dir_a, 0).unwrap();

        // Resume it file-backed, verify contents, mutate, persist elsewhere.
        let mut file = FileStore::open(&p, &dir_a, 0, Durability::None).unwrap();
        let mut out = vec![0u8; file.bucket_bytes()];
        file.read_bucket_into(1, &mut out).unwrap();
        assert_eq!(out, image_a);
        file.read_bucket_into(30, &mut out).unwrap();
        assert_eq!(out, image_b);
        assert!(!file.is_initialized(2));
        let image_c = vec![0xC3; file.bucket_bytes()];
        file.write_bucket(2, &image_c).unwrap();
        file.persist_to(&dir_b, 0).unwrap();

        // Resume *that* as a mem store.
        let mem2 = MemStore::load(&p, &dir_b, 0).unwrap();
        assert_eq!(mem2.read_bucket(1), &image_a[..]);
        assert_eq!(mem2.read_bucket(2), &image_c[..]);
        assert_eq!(mem2.read_bucket(30), &image_b[..]);
        assert_eq!(mem2.resident_bytes(), 3 * mem2.bucket_bytes() as u64);

        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn file_store_persists_in_place_with_a_flush() {
        let p = params();
        let dir = temp_dir("inplace");
        let mut s = FileStore::create(&p, &dir, 0, Durability::None).unwrap();
        s.write_bucket(4, &vec![0x44; s.bucket_bytes()]).unwrap();
        s.persist_to(&dir, 0).unwrap();
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::None).unwrap();
        let mut out = vec![0u8; s2.bucket_bytes()];
        s2.read_bucket_into(4, &mut out).unwrap();
        assert_eq!(out, vec![0x44; s2.bucket_bytes()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_without_metadata_is_a_storage_error() {
        let p = params();
        let dir = temp_dir("nometa");
        assert!(matches!(
            FileStore::open(&p, &dir, 0, Durability::None),
            Err(OramError::Storage { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_metadata_is_an_integrity_violation() {
        let p = params();
        let dir = temp_dir("badmeta");
        let mut s = FileStore::create(&p, &dir, 0, Durability::None).unwrap();
        s.write_bucket(0, &vec![7u8; s.bucket_bytes()]).unwrap();
        s.persist_to(&dir, 0).unwrap();
        drop(s);
        let meta = tree_meta_path(&dir, 0);
        let mut bytes = std::fs::read(&meta).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&meta, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&p, &dir, 0, Durability::None),
            Err(OramError::IntegrityViolation { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn geometry_mismatch_is_a_snapshot_error() {
        let dir = temp_dir("geom");
        let s = FileStore::create(&params(), &dir, 0, Durability::None).unwrap();
        s.persist_to(&dir, 0).unwrap();
        drop(s);
        // Different geometry: more blocks, different bucket size.
        let other = OramParams::new(1 << 10, 64, 4);
        assert!(matches!(
            FileStore::open(&other, &dir, 0, Durability::None),
            Err(OramError::Snapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_stores_clean_up_after_themselves() {
        let p = params();
        let s = FileStore::create_temp(&p, 0, Durability::None).unwrap();
        let dir = s.dir().to_path_buf();
        assert!(dir.exists());
        drop(s);
        assert!(!dir.exists(), "temp store directory should be removed");
    }

    #[test]
    fn storage_kind_resolution_and_subdirs() {
        assert_eq!(StorageKind::Mem.subdir("shard0"), StorageKind::Mem);
        let file = StorageKind::File {
            dir: PathBuf::from("/data/oram"),
        };
        assert_eq!(
            file.subdir("shard3"),
            StorageKind::File {
                dir: PathBuf::from("/data/oram/shard3")
            }
        );
        let tiered = StorageKind::Tiered {
            dir: PathBuf::from("/data/oram"),
            memory_budget: 1 << 20,
        };
        assert_eq!(
            tiered.subdir("shard1"),
            StorageKind::Tiered {
                dir: PathBuf::from("/data/oram/shard1"),
                memory_budget: 1 << 20,
            }
        );
        assert_eq!(StorageKind::Mem.tag(), 0);
        assert_eq!(file.tag(), 1);
        assert_eq!(StorageKind::TempFile.tag(), 1);
        assert_eq!(tiered.tag(), 2);
        assert_eq!(
            StorageKind::TempTiered {
                memory_budget: 1 << 20
            }
            .tag(),
            2
        );
        let root = Path::new("/snap");
        assert_eq!(StorageKind::from_tag(0, root).unwrap(), StorageKind::Mem);
        assert_eq!(
            StorageKind::from_tag(1, root).unwrap(),
            StorageKind::File {
                dir: root.to_path_buf()
            }
        );
        assert!(StorageKind::from_tag(9, root).is_err());
    }

    #[test]
    fn wal_store_recovers_writebacks_never_persisted() {
        let p = params();
        let dir = temp_dir("walrec");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
        let bb = s.bucket_bytes();
        let indices = [0u64, 1, 3];
        let image: Vec<u8> = (0..3 * bb).map(|i| (i % 249) as u8 + 1).collect();
        s.write_path(&indices, &image).unwrap();
        // No persist_to: only create()'s empty checkpoint and the WAL
        // survive the drop.
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::Strict).unwrap();
        assert_eq!(s2.wal_seq(), 1);
        let mut out = vec![0u8; bb];
        for (level, &idx) in indices.iter().enumerate() {
            assert!(s2.is_initialized(idx));
            s2.read_bucket_into(idx, &mut out).unwrap();
            assert_eq!(out, &image[level * bb..(level + 1) * bb]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_folds_the_log_and_survives_reopen() {
        let p = params();
        let dir = temp_dir("ckpt");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Batch(8)).unwrap();
        s.set_checkpoint_interval(2);
        let bb = s.bucket_bytes();
        for round in 0..5u64 {
            let image = vec![round as u8 + 1; 2 * bb];
            s.write_path(&[round, round + 8], &image).unwrap();
        }
        assert_eq!(s.wal_seq(), 5);
        // Five writebacks at interval 2 → folds after #2 and #4; the log
        // holds only record #5, far below two records' worth of bytes.
        let wal_len = std::fs::metadata(wal::wal_file_path(&dir, 0))
            .unwrap()
            .len();
        assert!(
            wal_len < 2 * (2 * bb) as u64,
            "log should have been truncated by the fold (len {wal_len})"
        );
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::Batch(8)).unwrap();
        assert_eq!(s2.wal_seq(), 5);
        let mut out = vec![0u8; bb];
        s2.read_bucket_into(4, &mut out).unwrap();
        assert_eq!(out, vec![5u8; bb]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_without_durability_folds_and_drops_the_log() {
        let p = params();
        let dir = temp_dir("drop-wal");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
        let bb = s.bucket_bytes();
        s.write_path(&[2, 9], &vec![0x5A; 2 * bb]).unwrap();
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::None).unwrap();
        assert!(!s2.has_wal());
        assert!(!wal::wal_file_path(&dir, 0).exists());
        assert_eq!(s2.wal_seq(), 1);
        let mut out = vec![0u8; bb];
        s2.read_bucket_into(9, &mut out).unwrap();
        assert_eq!(out, vec![0x5A; bb]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_load_replays_a_wal_tail() {
        let p = params();
        let dir = temp_dir("mem-tail");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
        let bb = s.bucket_bytes();
        s.write_path(&[1, 6], &vec![0x77; 2 * bb]).unwrap();
        // Meta is still the empty create() checkpoint; the data lives only
        // in the WAL.  A memory resume must see the same recovered tree.
        drop(s);
        let mem = MemStore::load(&p, &dir, 0).unwrap();
        assert_eq!(mem.wal_seq(), 1);
        assert_eq!(mem.read_bucket(6), &vec![0x77u8; bb][..]);
        assert!(mem.is_initialized(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A budget that puts exactly `k` levels in the treetop for `params()`.
    fn budget_for_levels(p: &OramParams, k: u32) -> u64 {
        if k == 0 {
            return 0;
        }
        ((1u64 << k) - 1) * p.bucket_bytes() as u64
    }

    #[test]
    fn treetop_levels_track_the_byte_budget() {
        let p = params();
        let bb = p.bucket_bytes() as u64;
        assert_eq!(treetop_levels_for_budget(&p, 0), 0);
        assert_eq!(treetop_levels_for_budget(&p, bb - 1), 0);
        assert_eq!(treetop_levels_for_budget(&p, bb), 1);
        assert_eq!(treetop_levels_for_budget(&p, 3 * bb), 2);
        assert_eq!(treetop_levels_for_budget(&p, 3 * bb + 1), 2);
        // A huge budget is capped at the tree height.
        assert_eq!(treetop_levels_for_budget(&p, u64::MAX), p.levels());
    }

    #[test]
    fn tiered_store_satisfies_the_contract_across_the_k_sweep() {
        let p = params();
        // K = 0 (pure spill), a mid split, and K = levels (pure arena).
        for k in [0, 2, p.levels()] {
            let budget = budget_for_levels(&p, k);
            let mut s = TieredStore::create_temp(&p, 0, Durability::None, budget).unwrap();
            assert_eq!(s.treetop_levels(), k, "budget {budget} should give K={k}");
            check_store_contract(&mut s);
        }
    }

    #[test]
    fn tiered_store_interchanges_with_mem_and_file_snapshots() {
        let p = params();
        let dir_a = temp_dir("tier-interchange-a");
        let dir_b = temp_dir("tier-interchange-b");
        let budget = budget_for_levels(&p, 3);

        // Populate a tiered store with buckets on both sides of the split
        // and persist it.
        let mut tiered = TieredStore::create(&p, &dir_a, 0, Durability::None, budget).unwrap();
        let bb = tiered.bucket_bytes();
        let top_image = vec![0x1A; bb];
        let deep_image = vec![0x2B; bb];
        let deep_idx = tiered.treetop_buckets() + 4;
        tiered.write_bucket(1, &top_image).unwrap();
        tiered.write_bucket(deep_idx, &deep_image).unwrap();
        tiered.persist_to(&dir_a, 0).unwrap();
        drop(tiered);

        // Resume as a plain mem store: both tiers must be visible.
        let mem = MemStore::load(&p, &dir_a, 0).unwrap();
        assert_eq!(mem.read_bucket(1), &top_image[..]);
        assert_eq!(mem.read_bucket(deep_idx), &deep_image[..]);

        // Mutate via a plain file store, persist elsewhere, resume tiered.
        let mut file = FileStore::open(&p, &dir_a, 0, Durability::None).unwrap();
        let image_c = vec![0x3C; bb];
        file.write_bucket(2, &image_c).unwrap();
        file.persist_to(&dir_b, 0).unwrap();
        drop(file);

        let tiered2 = TieredStore::open(&p, &dir_b, 0, Durability::None, budget).unwrap();
        let mut out = vec![0u8; bb];
        tiered2.read_bucket_into(1, &mut out).unwrap();
        assert_eq!(out, top_image);
        tiered2.read_bucket_into(2, &mut out).unwrap();
        assert_eq!(out, image_c);
        tiered2.read_bucket_into(deep_idx, &mut out).unwrap();
        assert_eq!(out, deep_image);

        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn tiered_wal_recovery_covers_the_spill_tier_only_until_checkpoint() {
        let p = params();
        let dir = temp_dir("tier-walrec");
        let budget = budget_for_levels(&p, 2);
        let mut s = TieredStore::create(&p, &dir, 0, Durability::Strict, budget).unwrap();
        let bb = s.bucket_bytes();
        assert_eq!(s.treetop_buckets(), 3);
        // A root-to-leaf path: [0, 1] in the treetop, [3, 8] in the file.
        let indices = [0u64, 1, 3, 8];
        let image: Vec<u8> = (0..4 * bb).map(|i| (i % 247) as u8 + 1).collect();
        s.write_path(&indices, &image).unwrap();
        assert_eq!(s.wal_seq(), 1, "only the spill suffix is one WAL record");
        drop(s);

        // Kill before any checkpoint: the logged deep buckets recover, the
        // WAL-exempt treetop does not (the controller's sequence barrier is
        // what rejects such a state at the backend layer).
        let s2 = TieredStore::open(&p, &dir, 0, Durability::Strict, budget).unwrap();
        assert_eq!(s2.wal_seq(), 1);
        let mut out = vec![0u8; bb];
        for (level, &idx) in indices.iter().enumerate().skip(2) {
            assert!(s2.is_initialized(idx));
            s2.read_bucket_into(idx, &mut out).unwrap();
            assert_eq!(out, &image[level * bb..(level + 1) * bb]);
        }
        assert!(!s2.is_initialized(0));
        assert!(!s2.is_initialized(1));
        drop(s2);

        // Same writeback followed by an explicit checkpoint: the flushed
        // treetop survives reopen alongside the deep buckets.
        let mut s3 = TieredStore::open(&p, &dir, 0, Durability::Strict, budget).unwrap();
        s3.write_path(&indices, &image).unwrap();
        s3.checkpoint().unwrap();
        drop(s3);
        let s4 = TieredStore::open(&p, &dir, 0, Durability::Strict, budget).unwrap();
        for (level, &idx) in indices.iter().enumerate() {
            assert!(s4.is_initialized(idx));
            s4.read_bucket_into(idx, &mut out).unwrap();
            assert_eq!(out, &image[level * bb..(level + 1) * bb]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_kind_parses_env_values_and_budgets() {
        assert_eq!(StorageKind::parse("", None).unwrap(), StorageKind::Mem);
        assert_eq!(StorageKind::parse("mem", None).unwrap(), StorageKind::Mem);
        assert_eq!(
            StorageKind::parse("file", None).unwrap(),
            StorageKind::TempFile
        );
        assert_eq!(
            StorageKind::parse("tiered", None).unwrap(),
            StorageKind::TempTiered {
                memory_budget: DEFAULT_MEMORY_BUDGET
            }
        );
        assert_eq!(
            StorageKind::parse("tiered", Some(123)).unwrap(),
            StorageKind::TempTiered { memory_budget: 123 }
        );
        assert!(StorageKind::parse("bogus", None).is_err());

        assert_eq!(StorageKind::parse_memory_budget("4096").unwrap(), 4096);
        assert_eq!(StorageKind::parse_memory_budget("512k").unwrap(), 512 << 10);
        assert_eq!(StorageKind::parse_memory_budget("96M").unwrap(), 96 << 20);
        assert_eq!(StorageKind::parse_memory_budget("2g").unwrap(), 2 << 30);
        assert!(StorageKind::parse_memory_budget("").is_err());
        assert!(StorageKind::parse_memory_budget("12q").is_err());
        assert!(StorageKind::parse_memory_budget("99999999999999999g").is_err());
    }

    #[test]
    fn storage_kind_save_load_round_trips_every_variant() {
        let root = Path::new("/snap");
        let cases = [
            (StorageKind::Mem, StorageKind::Mem),
            (
                StorageKind::File {
                    dir: PathBuf::from("/data/oram"),
                },
                StorageKind::File {
                    dir: root.to_path_buf(),
                },
            ),
            // Temp variants re-anchor onto the snapshot directory on load.
            (
                StorageKind::TempFile,
                StorageKind::File {
                    dir: root.to_path_buf(),
                },
            ),
            (
                StorageKind::Tiered {
                    dir: PathBuf::from("/data/oram"),
                    memory_budget: 7 << 20,
                },
                StorageKind::Tiered {
                    dir: root.to_path_buf(),
                    memory_budget: 7 << 20,
                },
            ),
            (
                StorageKind::TempTiered {
                    memory_budget: 96 << 20,
                },
                StorageKind::Tiered {
                    dir: root.to_path_buf(),
                    memory_budget: 96 << 20,
                },
            ),
        ];
        for (kind, expect) in cases {
            let mut buf = Vec::new();
            kind.save(&mut buf);
            let mut r = SnapReader::new(&buf);
            assert_eq!(StorageKind::load(&mut r, root).unwrap(), expect);
            assert_eq!(r.remaining(), 0, "codec must consume exactly what it wrote");
        }
        // The budget-free legacy decoder refuses the tiered tag rather than
        // inventing a budget.
        assert!(StorageKind::from_tag(2, root).is_err());
    }

    #[test]
    fn tree_storage_enum_dispatches_to_all_stores() {
        let p = params();
        let mut mem = TreeStorage::create(&p, &StorageKind::Mem, 0, Durability::None).unwrap();
        assert!(mem.as_mem().is_some());
        assert!(!mem.is_file_backed());
        mem.write_bucket(1, &vec![5u8; mem.bucket_bytes()]).unwrap();
        assert_eq!(mem.snapshot_bucket(1), vec![5u8; mem.bucket_bytes()]);

        let mut file =
            TreeStorage::create(&p, &StorageKind::TempFile, 0, Durability::None).unwrap();
        assert!(file.as_mem().is_none());
        assert!(file.is_file_backed());
        file.write_bucket(1, &vec![5u8; file.bucket_bytes()])
            .unwrap();
        assert_eq!(file.snapshot_bucket(1), vec![5u8; file.bucket_bytes()]);

        let kind = StorageKind::TempTiered {
            memory_budget: 1 << 20,
        };
        let mut tiered = TreeStorage::create(&p, &kind, 0, Durability::None).unwrap();
        assert!(tiered.as_mem().is_none());
        assert!(tiered.as_tiered().is_some());
        assert!(tiered.is_file_backed());
        tiered
            .write_bucket(1, &vec![5u8; tiered.bucket_bytes()])
            .unwrap();
        assert_eq!(tiered.snapshot_bucket(1), vec![5u8; tiered.bucket_bytes()]);
    }
}
