//! A functional Path ORAM *Backend* (Stefanov et al. \[34\]) as used by the
//! Freecursive ORAM controller.
//!
//! In the paper's terminology the ORAM controller is split into a *Frontend*
//! (PosMap management — the paper's contribution, implemented in the
//! `freecursive` crate) and a *Backend* (the Path ORAM tree machinery, §3.1).
//! This crate implements the Backend:
//!
//! * [`params::OramParams`] — tree geometry (N, Z, block size, levels) and the
//!   bucket byte layout padded to DRAM bursts.
//! * [`tree`] — path/bucket index arithmetic for the binary ORAM tree.
//! * [`bucket::Bucket`] — Z-slot buckets with dummy blocks and
//!   serialisation, plus the zero-copy [`bucket::BucketView`] /
//!   [`bucket::BucketWriter`] codec the hot path uses.
//! * [`stash::Stash`] — the bounded on-chip stash, a fixed-capacity slab of
//!   block-sized slots.
//! * [`storage::TreeStore`] — the pluggable untrusted-memory seam, with
//!   three stores behind the [`storage::TreeStorage`] enum: the flat
//!   in-memory arena ([`storage::MemStore`]), a file-backed sparse tree
//!   ([`storage::FileStore`]) in the subtree layout of \[26\], and a
//!   two-tier split ([`storage::TieredStore`]) that pins the top K tree
//!   levels — the paper's treetop, touched on every access (§5.1) — in RAM
//!   while deeper levels spill to the file store.  All expose an explicit
//!   tampering API for the active-adversary model and persist to a common
//!   on-disk snapshot format.  The tier split and its crash-safety argument
//!   are mapped end to end in `docs/ARCHITECTURE.md` at the workspace root.
//! * [`wal`] — the write-ahead log behind the file store's crash
//!   consistency: sealed path writebacks are logged (per the
//!   [`wal::Durability`] fsync discipline) before the tree file is touched,
//!   folded into checkpoints, and replayed on resume.
//! * [`encryption::BucketCipher`] — probabilistic bucket encryption in the
//!   per-bucket-seed style of \[26\] or the global-seed style the paper
//!   introduces to defeat pad-replay attacks (§6.4).
//! * [`backend::PathOramBackend`] — the access algorithm (path read, stash
//!   update, greedy write-back) supporting `read`, `write`, `readrmv` and
//!   `append` operations (§4.2.2).
//! * [`insecure::InsecureBackend`] — a flat, non-oblivious implementation of
//!   the same [`backend::OramBackend`] trait: the paper's `Insecure` baseline
//!   and a fast substrate for functional tests.
//!
//! The Backend never sees program addresses in the clear beyond the block
//! address tags required by Path ORAM itself, and is oblivious by
//! construction: every non-append access reads and rewrites exactly one
//! root-to-leaf path chosen by the caller-supplied leaf.
//!
//! # Examples
//!
//! ```
//! use path_oram::{OramParams, PathOramBackend, AccessOp, EncryptionMode};
//! use path_oram::backend::OramBackend as _;
//!
//! # fn main() -> Result<(), path_oram::OramError> {
//! let params = OramParams::new(1 << 10, 64, 4);
//! let mut backend = PathOramBackend::new(params, EncryptionMode::GlobalSeed, [0u8; 16], 7)?;
//!
//! // The frontend owns the position map; here we play both roles.
//! let data = vec![0xAB; 64];
//! backend.access(AccessOp::Write, 42, 13, 99, Some(&data))?;
//! let read_back = backend.access(AccessOp::Read, 42, 99, 5, None)?;
//! assert_eq!(read_back.unwrap(), data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bucket;
pub mod encryption;
pub mod error;
pub mod insecure;
pub mod params;
pub mod snapshot;
pub mod stash;
pub mod stats;
pub mod storage;
pub mod tree;
pub mod types;
pub mod wal;

pub use backend::{OramBackend, PathOramBackend};
pub use encryption::{BucketCipher, EncryptionMode};
pub use error::OramError;
pub use insecure::InsecureBackend;
pub use params::OramParams;
pub use stash::Stash;
pub use stats::BackendStats;
pub use storage::{
    treetop_levels_for_budget, FileStore, MemStore, StorageKind, TieredStore, TreeStorage,
    TreeStore, DEFAULT_MEMORY_BUDGET,
};
pub use types::{AccessOp, BlockData, BlockId, Leaf};
pub use wal::{Durability, Wal};

// `OramBackend: Send` is a supertrait promise (backends move into per-shard
// worker threads in a sharded deployment); pin it down at compile time for
// every backend and the building blocks they own, so a non-`Send` field
// added to any of them fails here rather than at a distant frontend call
// site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PathOramBackend>();
    assert_send::<InsecureBackend>();
    assert_send::<TreeStorage>();
    assert_send::<MemStore>();
    assert_send::<FileStore>();
    assert_send::<TieredStore>();
    assert_send::<Wal>();
    assert_send::<Stash>();
    assert_send::<BucketCipher>();
    assert_send::<Box<dyn OramBackend>>();
    assert_send::<Box<dyn TreeStore>>();
};
