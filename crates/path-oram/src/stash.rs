//! The on-chip stash: a small trusted buffer of blocks awaiting eviction.
//!
//! The stash is a fixed-capacity **slab**: one contiguous allocation of
//! block-sized payload slots plus a parallel metadata array and an
//! addr → slot index.  Inserting a block copies its payload into a free
//! slot; removing one just returns the slot to the free list.  After the
//! slab is built, steady-state operation performs no heap allocation —
//! the property the backend's zero-allocation hot path rests on.

use crate::error::OramError;
use crate::types::{BlockId, Leaf, OramBlock};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative (Fibonacci) hasher for `u64` block addresses.
///
/// The stash index and the backend's residency set are keyed by block
/// address and hit several times per bucket on the hot path; SipHash's
/// flood-resistance buys nothing there (a mis-hashing *program* can only
/// slow itself down, never break obliviousness — the memory trace stays one
/// path read and one path write per access) and costs tens of nanoseconds
/// per operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockIdHasher(u64);

/// `BuildHasher` for [`BlockIdHasher`]-keyed maps.
pub type BlockIdBuildHasher = BuildHasherDefault<BlockIdHasher>;

impl Hasher for BlockIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the key types used here go through
        // `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

/// Metadata of one slab slot.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    addr: BlockId,
    leaf: Leaf,
    occupied: bool,
}

const EMPTY_SLOT: SlotMeta = SlotMeta {
    addr: 0,
    leaf: 0,
    occupied: false,
};

/// The Path ORAM stash.
///
/// Holds blocks that could not be evicted back to the tree, plus — while an
/// access is in flight — the blocks of the path currently being processed.
/// The paper assumes a 200-block capacity (§3.1); exceeding it *after*
/// eviction is a fatal [`OramError::StashOverflow`].  The slab is sized
/// `capacity + transient_slots` so the in-flight path never forces a
/// reallocation.
#[derive(Debug, Clone)]
pub struct Stash {
    /// Contiguous payload slots, `block_bytes` apart.
    slab: Vec<u8>,
    meta: Vec<SlotMeta>,
    free: Vec<u32>,
    index: HashMap<BlockId, u32, BlockIdBuildHasher>,
    capacity: usize,
    block_bytes: usize,
    max_occupancy: usize,
}

impl Stash {
    /// Creates a stash with the given steady-state `capacity` (in blocks)
    /// for `block_bytes`-byte payloads, with `transient_slots` extra slots
    /// of headroom for the path being processed (typically `(L + 1) · Z + 1`).
    pub fn new(capacity: usize, block_bytes: usize, transient_slots: usize) -> Self {
        let slots = capacity + transient_slots;
        Self {
            slab: vec![0u8; slots * block_bytes],
            meta: vec![EMPTY_SLOT; slots],
            // Hand out low slot indices first (pop from the back).
            free: (0..slots as u32).rev().collect(),
            index: HashMap::with_capacity_and_hasher(slots, BlockIdBuildHasher::default()),
            capacity,
            block_bytes,
            max_occupancy: 0,
        }
    }

    /// Number of blocks currently held.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// High-water mark of occupancy observed so far.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Configured steady-state capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total slots in the slab (capacity plus transient headroom);
    /// diagnostics for the capacity-stability tests.
    pub fn slot_capacity(&self) -> usize {
        self.meta.len()
    }

    /// Payload bytes per slot.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    // lint: ct-scope, no-alloc
    #[inline]
    fn payload(&self, slot: u32) -> &[u8] {
        let start = slot as usize * self.block_bytes;
        &self.slab[start..start + self.block_bytes]
    }

    #[inline]
    fn payload_mut(&mut self, slot: u32) -> &mut [u8] {
        let start = slot as usize * self.block_bytes;
        &mut self.slab[start..start + self.block_bytes]
    }

    /// Claims a slot for `addr`/`leaf`, reusing the existing slot when the
    /// address is already present (replace semantics).  Growing only happens
    /// if the transient headroom was undersized — never in steady state.
    fn claim_slot(&mut self, addr: BlockId, leaf: Leaf) -> u32 {
        // lint: allow(secret-branch, CAM-style index probe performed on every insert; the probe is on-chip and the external trace is unchanged)
        if let Some(&slot) = self.index.get(&addr) {
            self.meta[slot as usize].leaf = leaf;
            return slot;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            let slot = self.meta.len() as u32;
            // lint: allow(no-alloc, cold fallback only when the transient headroom was undersized; pinned by the slab-capacity test)
            self.meta.push(EMPTY_SLOT);
            // lint: allow(no-alloc, cold fallback only when the transient headroom was undersized; pinned by the slab-capacity test)
            self.slab.resize(self.slab.len() + self.block_bytes, 0);
            slot
        });
        self.meta[slot as usize] = SlotMeta {
            addr,
            leaf,
            occupied: true,
        };
        // lint: allow(no-alloc, index pre-sized to the full slot count at construction)
        self.index.insert(addr, slot);
        self.max_occupancy = self.max_occupancy.max(self.index.len());
        slot
    }

    /// Inserts or replaces a block, copying `data` into the slab.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `block_bytes` long.
    pub fn insert_from_parts(&mut self, addr: BlockId, leaf: Leaf, data: &[u8]) {
        assert_eq!(data.len(), self.block_bytes, "block size mismatch");
        let slot = self.claim_slot(addr, leaf);
        self.payload_mut(slot).copy_from_slice(data);
    }

    /// Inserts or replaces a block with an all-zero payload (the implicit
    /// zero-initialisation of never-written blocks).
    pub fn insert_zeroed(&mut self, addr: BlockId, leaf: Leaf) {
        let slot = self.claim_slot(addr, leaf);
        self.payload_mut(slot).fill(0);
    }

    /// Inserts or replaces a block (owned-payload convenience).
    pub fn insert(&mut self, block: OramBlock) {
        self.insert_from_parts(block.addr, block.leaf, &block.data);
    }

    /// Whether the stash currently holds `addr`.
    pub fn contains(&self, addr: BlockId) -> bool {
        self.index.contains_key(&addr)
    }

    /// Borrowed view of the block's payload, if present.
    pub fn data_of(&self, addr: BlockId) -> Option<&[u8]> {
        self.index.get(&addr).map(|&slot| self.payload(slot))
    }

    /// Returns the leaf the block is currently mapped to, if present.
    pub fn leaf_of(&self, addr: BlockId) -> Option<Leaf> {
        self.index
            .get(&addr)
            .map(|&slot| self.meta[slot as usize].leaf)
    }

    /// Updates the leaf of a resident block; returns `false` if absent.
    pub fn remap(&mut self, addr: BlockId, new_leaf: Leaf) -> bool {
        // lint: allow(secret-branch, CAM-style index probe; hit or miss is reported to the caller and never externalised)
        if let Some(&slot) = self.index.get(&addr) {
            self.meta[slot as usize].leaf = new_leaf;
            true
        } else {
            false
        }
    }

    /// Replaces the data of a resident block; returns `false` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `block_bytes` long.
    pub fn update_data(&mut self, addr: BlockId, data: &[u8]) -> bool {
        assert_eq!(data.len(), self.block_bytes, "block size mismatch");
        // lint: allow(secret-branch, CAM-style index probe; hit or miss is reported to the caller and never externalised)
        if let Some(&slot) = self.index.get(&addr) {
            self.payload_mut(slot).copy_from_slice(data);
            true
        } else {
            false
        }
    }

    /// Removes a block, copying its payload into `out` (cleared first).
    /// Returns the leaf it was mapped to, or `None` if absent.  This is the
    /// allocation-free removal path: `out`'s capacity is reused across calls.
    pub fn remove_into(&mut self, addr: BlockId, out: &mut Vec<u8>) -> Option<Leaf> {
        let slot = self.index.remove(&addr)?;
        out.clear();
        // lint: allow(no-alloc, grows the caller's buffer to block_bytes once; steady state reuses its capacity)
        out.extend_from_slice(self.payload(slot));
        let leaf = self.meta[slot as usize].leaf;
        self.meta[slot as usize] = EMPTY_SLOT;
        // lint: allow(no-alloc, free list pre-sized to the full slot count; a push always follows a pop)
        self.free.push(slot);
        Some(leaf)
    }

    /// Removes and returns a block (owned-payload convenience).
    pub fn remove(&mut self, addr: BlockId) -> Option<OramBlock> {
        // lint: allow(no-alloc, owned-payload convenience for tests and diagnostics; hot paths use remove_into)
        let mut data = Vec::new();
        let leaf = self.remove_into(addr, &mut data)?;
        Some(OramBlock { addr, leaf, data })
    }

    // ------------------------------------------------------------------
    // Slot-level access for the eviction classifier.
    // ------------------------------------------------------------------

    /// Iterates over the occupied slots as `(slot, addr, leaf)`, in slab
    /// order (deterministic for a deterministic operation history, unlike a
    /// hash-map walk).
    pub fn occupied_slots(&self) -> impl Iterator<Item = (u32, BlockId, Leaf)> + '_ {
        self.meta
            .iter()
            .enumerate()
            .filter_map(|(slot, meta)| meta.occupied.then_some((slot as u32, meta.addr, meta.leaf)))
    }

    /// The payload of an occupied slot (eviction serialises from here).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not occupied.
    pub fn slot_payload(&self, slot: u32) -> (BlockId, Leaf, &[u8]) {
        let meta = self.meta[slot as usize];
        assert!(meta.occupied, "slot {slot} is vacant");
        (meta.addr, meta.leaf, self.payload(slot))
    }

    /// Releases an occupied slot after its block was evicted into the tree.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not occupied.
    pub fn release_slot(&mut self, slot: u32) {
        let meta = self.meta[slot as usize];
        assert!(meta.occupied, "slot {slot} is vacant");
        self.index.remove(&meta.addr);
        self.meta[slot as usize] = EMPTY_SLOT;
        // lint: allow(no-alloc, free list pre-sized to the full slot count; a push always follows a pop)
        self.free.push(slot);
    }

    /// Checks the occupancy against the capacity, returning an error if it is
    /// exceeded.  Called by the backend after each eviction pass.
    pub fn check_overflow(&self) -> Result<(), OramError> {
        if self.index.len() > self.capacity {
            Err(OramError::StashOverflow {
                occupancy: self.index.len(),
                capacity: self.capacity,
            })
        } else {
            Ok(())
        }
    }
    // lint: end

    /// Iterates over resident blocks as `(addr, leaf)` pairs (test/diagnostic
    /// use).
    pub fn iter_addrs(&self) -> impl Iterator<Item = (BlockId, Leaf)> + '_ {
        self.occupied_slots().map(|(_, addr, leaf)| (addr, leaf))
    }

    // ------------------------------------------------------------------
    // Snapshot persistence.
    // ------------------------------------------------------------------

    /// Serialises the stash — including the exact slot assignment and the
    /// free-list order — into `out`.  Restoring this (rather than just the
    /// resident blocks) makes a resumed backend's eviction order, and hence
    /// its tree contents, byte-identical to an uninterrupted run:
    /// [`Stash::occupied_slots`] walks in slab order and free slots are
    /// handed out in free-list order, so both must round-trip.
    pub fn save(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_u32, put_u64};
        put_u64(out, self.capacity as u64);
        put_u64(out, self.block_bytes as u64);
        put_u64(out, self.meta.len() as u64);
        put_u64(out, self.max_occupancy as u64);
        put_u64(out, self.free.len() as u64);
        for &slot in &self.free {
            put_u32(out, slot);
        }
        put_u64(out, self.index.len() as u64);
        for (slot, meta) in self.meta.iter().enumerate() {
            if !meta.occupied {
                continue;
            }
            put_u32(out, slot as u32);
            put_u64(out, meta.addr);
            put_u64(out, meta.leaf);
            out.extend_from_slice(self.payload(slot as u32));
        }
    }

    /// Restores the stash from bytes written by [`Stash::save`], replacing
    /// all current contents.  The stash must have been constructed with the
    /// same capacity, block size and slot count (all derived from the same
    /// `OramParams` on both sides).
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation or a geometry mismatch.
    pub fn load(&mut self, r: &mut crate::snapshot::SnapReader<'_>) -> Result<(), OramError> {
        let mismatch = |what: &str, got: u64, want: u64| OramError::Snapshot {
            detail: format!("stash {what} mismatch: snapshot has {got}, instance has {want}"),
        };
        let capacity = r.u64()?;
        if capacity != self.capacity as u64 {
            return Err(mismatch("capacity", capacity, self.capacity as u64));
        }
        let block_bytes = r.u64()?;
        if block_bytes != self.block_bytes as u64 {
            return Err(mismatch("block size", block_bytes, self.block_bytes as u64));
        }
        let slots = r.u64()?;
        if slots != self.meta.len() as u64 {
            return Err(mismatch("slot count", slots, self.meta.len() as u64));
        }
        self.max_occupancy = r.u64()? as usize;
        let free_len = r.len(self.meta.len())?;
        self.free.clear();
        for _ in 0..free_len {
            let slot = r.u32()?;
            if slot as usize >= self.meta.len() {
                return Err(OramError::Snapshot {
                    detail: format!("free-list slot {slot} out of range"),
                });
            }
            self.free.push(slot);
        }
        self.index.clear();
        self.meta.fill(EMPTY_SLOT);
        self.slab.fill(0);
        let occupied = r.len(self.meta.len())?;
        if occupied + free_len != self.meta.len() {
            return Err(OramError::Snapshot {
                detail: format!(
                    "stash slot accounting mismatch: {occupied} occupied + {free_len} free != {}",
                    self.meta.len()
                ),
            });
        }
        for _ in 0..occupied {
            let slot = r.u32()?;
            if slot as usize >= self.meta.len() || self.meta[slot as usize].occupied {
                return Err(OramError::Snapshot {
                    detail: format!("invalid or duplicate stash slot {slot}"),
                });
            }
            let addr = r.u64()?;
            let leaf = r.u64()?;
            let payload = r.take(self.block_bytes)?;
            self.meta[slot as usize] = SlotMeta {
                addr,
                leaf,
                occupied: true,
            };
            self.payload_mut(slot).copy_from_slice(payload);
            if self.index.insert(addr, slot).is_some() {
                return Err(OramError::Snapshot {
                    detail: format!("duplicate stash address {addr}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stash(capacity: usize) -> Stash {
        Stash::new(capacity, 4, 8)
    }

    fn blk(addr: u64, leaf: u64) -> OramBlock {
        OramBlock {
            addr,
            leaf,
            data: vec![addr as u8; 4],
        }
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut stash = stash(10);
        stash.insert(blk(5, 3));
        assert!(stash.contains(5));
        assert_eq!(stash.leaf_of(5), Some(3));
        assert_eq!(stash.data_of(5), Some(&[5u8; 4][..]));
        let removed = stash.remove(5).unwrap();
        assert_eq!(removed.leaf, 3);
        assert!(!stash.contains(5));
        assert!(stash.is_empty());
    }

    #[test]
    fn remap_and_update_data() {
        let mut stash = stash(10);
        stash.insert(blk(1, 0));
        assert!(stash.remap(1, 9));
        assert_eq!(stash.leaf_of(1), Some(9));
        assert!(stash.update_data(1, &[7, 7, 7, 7]));
        assert_eq!(stash.data_of(1), Some(&[7u8, 7, 7, 7][..]));
        assert!(!stash.remap(2, 0));
        assert!(!stash.update_data(2, &[0u8; 4]));
    }

    #[test]
    fn remove_into_reuses_the_output_buffer() {
        let mut stash = stash(10);
        stash.insert(blk(3, 2));
        let mut out = Vec::new();
        assert_eq!(stash.remove_into(3, &mut out), Some(2));
        assert_eq!(out, vec![3u8; 4]);
        let cap = out.capacity();
        stash.insert(blk(4, 1));
        assert_eq!(stash.remove_into(4, &mut out), Some(1));
        assert_eq!(out, vec![4u8; 4]);
        assert_eq!(out.capacity(), cap, "no reallocation on reuse");
        assert_eq!(stash.remove_into(99, &mut out), None);
    }

    #[test]
    fn slab_capacity_is_stable_within_headroom() {
        let mut stash = stash(4);
        let slots = stash.slot_capacity();
        for round in 0..50u64 {
            for i in 0..8 {
                stash.insert(blk(round * 8 + i, i));
            }
            for i in 0..8 {
                stash.remove(round * 8 + i).unwrap();
            }
        }
        assert_eq!(stash.slot_capacity(), slots, "slab never grew");
    }

    #[test]
    fn occupied_slots_walks_in_slab_order() {
        let mut stash = stash(10);
        for addr in [9u64, 1, 5] {
            stash.insert(blk(addr, addr));
        }
        // Slots are handed out low-first, so slab order is insertion order.
        let addrs: Vec<u64> = stash.occupied_slots().map(|(_, a, _)| a).collect();
        assert_eq!(addrs, vec![9, 1, 5]);
        let (addr, leaf, data) = stash.slot_payload(0);
        assert_eq!((addr, leaf), (9, 9));
        assert_eq!(data, &[9u8; 4]);
    }

    #[test]
    fn release_slot_frees_the_address() {
        let mut stash = stash(10);
        stash.insert(blk(7, 1));
        let slot = stash.occupied_slots().next().unwrap().0;
        stash.release_slot(slot);
        assert!(!stash.contains(7));
        assert!(stash.is_empty());
    }

    #[test]
    fn overflow_detection_and_high_water_mark() {
        let mut stash = stash(2);
        stash.insert(blk(1, 0));
        stash.insert(blk(2, 0));
        assert!(stash.check_overflow().is_ok());
        stash.insert(blk(3, 0));
        assert_eq!(
            stash.check_overflow(),
            Err(OramError::StashOverflow {
                occupancy: 3,
                capacity: 2
            })
        );
        assert_eq!(stash.max_occupancy(), 3);
    }

    #[test]
    fn reinserting_same_address_replaces_not_duplicates() {
        let mut stash = stash(10);
        stash.insert(blk(1, 0));
        stash.insert(blk(1, 5));
        assert_eq!(stash.len(), 1);
        assert_eq!(stash.leaf_of(1), Some(5));
    }
}
