//! The on-chip stash: a small trusted buffer of blocks awaiting eviction.

use crate::error::OramError;
use crate::types::{BlockData, BlockId, Leaf, OramBlock};
use std::collections::HashMap;

/// The Path ORAM stash.
///
/// Holds blocks that could not be evicted back to the tree (plus, logically,
/// the path currently being processed).  The paper assumes a 200-block
/// capacity (§3.1); exceeding it is a fatal [`OramError::StashOverflow`].
#[derive(Debug, Clone, Default)]
pub struct Stash {
    blocks: HashMap<BlockId, (Leaf, BlockData)>,
    capacity: usize,
    max_occupancy: usize,
}

impl Stash {
    /// Creates a stash with the given capacity (in blocks).
    pub fn new(capacity: usize) -> Self {
        Self {
            blocks: HashMap::new(),
            capacity,
            max_occupancy: 0,
        }
    }

    /// Number of blocks currently held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// High-water mark of occupancy observed so far.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts or replaces a block.
    pub fn insert(&mut self, block: OramBlock) {
        self.blocks.insert(block.addr, (block.leaf, block.data));
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
    }

    /// Whether the stash currently holds `addr`.
    pub fn contains(&self, addr: BlockId) -> bool {
        self.blocks.contains_key(&addr)
    }

    /// Returns a copy of the block's data, if present.
    pub fn data_of(&self, addr: BlockId) -> Option<BlockData> {
        self.blocks.get(&addr).map(|(_, d)| d.clone())
    }

    /// Returns the leaf the block is currently mapped to, if present.
    pub fn leaf_of(&self, addr: BlockId) -> Option<Leaf> {
        self.blocks.get(&addr).map(|(l, _)| *l)
    }

    /// Updates the leaf of a resident block; returns `false` if absent.
    pub fn remap(&mut self, addr: BlockId, new_leaf: Leaf) -> bool {
        if let Some(entry) = self.blocks.get_mut(&addr) {
            entry.0 = new_leaf;
            true
        } else {
            false
        }
    }

    /// Replaces the data of a resident block; returns `false` if absent.
    pub fn update_data(&mut self, addr: BlockId, data: BlockData) -> bool {
        if let Some(entry) = self.blocks.get_mut(&addr) {
            entry.1 = data;
            true
        } else {
            false
        }
    }

    /// Removes and returns a block.
    pub fn remove(&mut self, addr: BlockId) -> Option<OramBlock> {
        self.blocks
            .remove(&addr)
            .map(|(leaf, data)| OramBlock { addr, leaf, data })
    }

    /// Collects up to `max` blocks satisfying `predicate` (on `(addr, leaf)`),
    /// removing them from the stash.  Used by the eviction logic to fill a
    /// bucket with blocks that may legally reside there.
    pub fn take_matching<F>(&mut self, max: usize, mut predicate: F) -> Vec<OramBlock>
    where
        F: FnMut(BlockId, Leaf) -> bool,
    {
        let selected: Vec<BlockId> = self
            .blocks
            .iter()
            .filter(|(addr, (leaf, _))| predicate(**addr, *leaf))
            .map(|(addr, _)| *addr)
            .take(max)
            .collect();
        selected
            .into_iter()
            .map(|addr| self.remove(addr).expect("selected block present"))
            .collect()
    }

    /// Checks the occupancy against the capacity, returning an error if it is
    /// exceeded.  Called by the backend after each eviction pass.
    pub fn check_overflow(&self) -> Result<(), OramError> {
        if self.blocks.len() > self.capacity {
            Err(OramError::StashOverflow {
                occupancy: self.blocks.len(),
                capacity: self.capacity,
            })
        } else {
            Ok(())
        }
    }

    /// Iterates over resident blocks as `(addr, leaf)` pairs (test/diagnostic
    /// use).
    pub fn iter_addrs(&self) -> impl Iterator<Item = (BlockId, Leaf)> + '_ {
        self.blocks.iter().map(|(a, (l, _))| (*a, *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(addr: u64, leaf: u64) -> OramBlock {
        OramBlock {
            addr,
            leaf,
            data: vec![addr as u8; 4],
        }
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut stash = Stash::new(10);
        stash.insert(blk(5, 3));
        assert!(stash.contains(5));
        assert_eq!(stash.leaf_of(5), Some(3));
        assert_eq!(stash.data_of(5), Some(vec![5u8; 4]));
        let removed = stash.remove(5).unwrap();
        assert_eq!(removed.leaf, 3);
        assert!(!stash.contains(5));
        assert!(stash.is_empty());
    }

    #[test]
    fn remap_and_update_data() {
        let mut stash = Stash::new(10);
        stash.insert(blk(1, 0));
        assert!(stash.remap(1, 9));
        assert_eq!(stash.leaf_of(1), Some(9));
        assert!(stash.update_data(1, vec![7, 7, 7, 7]));
        assert_eq!(stash.data_of(1), Some(vec![7, 7, 7, 7]));
        assert!(!stash.remap(2, 0));
        assert!(!stash.update_data(2, vec![]));
    }

    #[test]
    fn take_matching_respects_limit_and_predicate() {
        let mut stash = Stash::new(100);
        for i in 0..10 {
            stash.insert(blk(i, i % 2));
        }
        let taken = stash.take_matching(3, |_, leaf| leaf == 0);
        assert_eq!(taken.len(), 3);
        assert!(taken.iter().all(|b| b.leaf == 0));
        assert_eq!(stash.len(), 7);
    }

    #[test]
    fn overflow_detection_and_high_water_mark() {
        let mut stash = Stash::new(2);
        stash.insert(blk(1, 0));
        stash.insert(blk(2, 0));
        assert!(stash.check_overflow().is_ok());
        stash.insert(blk(3, 0));
        assert_eq!(
            stash.check_overflow(),
            Err(OramError::StashOverflow {
                occupancy: 3,
                capacity: 2
            })
        );
        assert_eq!(stash.max_occupancy(), 3);
    }

    #[test]
    fn reinserting_same_address_replaces_not_duplicates() {
        let mut stash = Stash::new(10);
        stash.insert(blk(1, 0));
        stash.insert(blk(1, 5));
        assert_eq!(stash.len(), 1);
        assert_eq!(stash.leaf_of(1), Some(5));
    }
}
