//! ORAM tree geometry and bucket layout parameters.

use serde::{Deserialize, Serialize};

/// Default stash capacity in blocks, following the paper (§3.1, "we assume
/// 200 following \[26\]").  The capacity excludes the path being processed.
pub const DEFAULT_STASH_CAPACITY: usize = 200;

/// Per-slot metadata bytes in a serialised bucket: 1 valid byte + 8 address
/// bytes + 4 leaf bytes.  The address field is a full `u64` because unified
/// `i‖a_i` addresses carry the recursion-level tag in bits 56+ and must
/// round-trip through the tree unchanged; the leaf field is 4 bytes, which
/// the [`OramParams::MAX_LEAF_LEVEL`] bound makes sufficient.  Real hardware
/// packs ~51 bits; with bucket padding this encoding still lands on the
/// paper's 320-byte bucket for Z = 4, 64-byte blocks.
pub const SLOT_META_BYTES: usize = 13;

/// Per-bucket header bytes: the 8-byte encryption seed stored in the clear.
pub const BUCKET_HEADER_BYTES: usize = 8;

/// Geometry of one Path ORAM tree.
///
/// # Examples
///
/// ```
/// use path_oram::OramParams;
///
/// // 4 GB of 64-byte blocks: N = 2^26, Z = 4.
/// let p = OramParams::new(1 << 26, 64, 4);
/// assert_eq!(p.leaf_level(), 24);
/// assert_eq!(p.bucket_bytes(), 320);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OramParams {
    /// Maximum number of real data blocks (N).
    pub num_blocks: u64,
    /// Payload bytes per block (B), including any MAC appended by the
    /// frontend.
    pub block_bytes: usize,
    /// Block slots per bucket (Z).
    pub z: usize,
    /// Leaf level L; the tree has `L + 1` levels and `2^L` leaves.
    pub leaf_level: u32,
    /// Stash capacity in blocks (excluding the in-flight path).
    pub stash_capacity: usize,
    /// Granularity to which serialised buckets are padded (512 bits = 64
    /// bytes by default, matching the paper's DDR3 estimate in Figure 3).
    pub bucket_align: usize,
}

impl OramParams {
    /// Largest supported leaf level.  Leaf labels are stored in a 4-byte
    /// field of the serialised slot metadata (see [`SLOT_META_BYTES`]), so
    /// `L ≤ 32` guarantees every leaf in `[0, 2^L)` fits the on-disk
    /// encoding.  L = 32 with 64-byte blocks is a 1 TB ORAM, the largest
    /// capacity the evaluation sweeps (Figure 3's 2^40-byte point).
    pub const MAX_LEAF_LEVEL: u32 = 32;

    /// Creates parameters for `num_blocks` blocks of `block_bytes` bytes with
    /// `z` slots per bucket.
    ///
    /// The number of levels is chosen so that the tree provides at least
    /// `2 × num_blocks` slots (≈50% utilisation, §7.1.1): the smallest `L`
    /// with `Z · 2^(L+1) ≥ 2N`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, or if the resulting leaf level would
    /// exceed [`OramParams::MAX_LEAF_LEVEL`].
    pub fn new(num_blocks: u64, block_bytes: usize, z: usize) -> Self {
        assert!(num_blocks > 0, "ORAM must hold at least one block");
        assert!(block_bytes > 0, "blocks must be non-empty");
        assert!(z > 0, "buckets must have at least one slot");
        let needed_slots = 2 * num_blocks;
        let mut leaf_level = 0u32;
        while (z as u64) << (leaf_level + 1) < needed_slots {
            leaf_level += 1;
        }
        assert!(
            leaf_level <= Self::MAX_LEAF_LEVEL,
            "leaf level {leaf_level} exceeds the supported maximum {}",
            Self::MAX_LEAF_LEVEL
        );
        Self {
            num_blocks,
            block_bytes,
            z,
            leaf_level,
            stash_capacity: DEFAULT_STASH_CAPACITY,
            bucket_align: 64,
        }
    }

    /// Overrides the leaf level (for experiments that fix L explicitly, e.g.
    /// the Phantom comparison with L = 19).
    ///
    /// # Panics
    ///
    /// Panics if `leaf_level` exceeds [`OramParams::MAX_LEAF_LEVEL`].
    pub fn with_leaf_level(mut self, leaf_level: u32) -> Self {
        assert!(
            leaf_level <= Self::MAX_LEAF_LEVEL,
            "leaf level {leaf_level} exceeds the supported maximum {}",
            Self::MAX_LEAF_LEVEL
        );
        self.leaf_level = leaf_level;
        self
    }

    /// Overrides the stash capacity.
    pub fn with_stash_capacity(mut self, capacity: usize) -> Self {
        self.stash_capacity = capacity;
        self
    }

    /// Overrides the bucket padding granularity.
    pub fn with_bucket_align(mut self, align: usize) -> Self {
        assert!(align > 0);
        self.bucket_align = align;
        self
    }

    /// Leaf level L.
    pub fn leaf_level(&self) -> u32 {
        self.leaf_level
    }

    /// Total number of tree levels (`L + 1`).
    pub fn levels(&self) -> u32 {
        self.leaf_level + 1
    }

    /// Number of leaves (`2^L`).
    pub fn num_leaves(&self) -> u64 {
        1u64 << self.leaf_level
    }

    /// Number of buckets in the tree (`2^(L+1) - 1`).
    pub fn num_buckets(&self) -> u64 {
        (1u64 << (self.leaf_level + 1)) - 1
    }

    /// Serialised bucket size in bytes, padded to [`Self::bucket_align`].
    pub fn bucket_bytes(&self) -> usize {
        let raw = BUCKET_HEADER_BYTES + self.z * (SLOT_META_BYTES + self.block_bytes);
        raw.div_ceil(self.bucket_align) * self.bucket_align
    }

    /// Bytes of a serialised bucket image covered by the keystream: all of
    /// it except the plaintext 8-byte seed header.  One path direction
    /// therefore moves `levels() * bucket_sealed_bytes()` bytes through the
    /// AES engine, which the batched cipher pass pays off in
    /// ⌈that / (16 · 8)⌉ engine calls.
    pub fn bucket_sealed_bytes(&self) -> usize {
        self.bucket_bytes() - BUCKET_HEADER_BYTES
    }

    /// Byte offset of the slot-data region within a serialised bucket image
    /// (header plus all slot metadata); slot `s`'s payload starts at
    /// `bucket_data_base() + s * block_bytes`.  The single source of truth
    /// for the layout arithmetic shared by the bucket codec and the
    /// backend's path scratch.
    pub fn bucket_data_base(&self) -> usize {
        BUCKET_HEADER_BYTES + self.z * SLOT_META_BYTES
    }

    /// Bytes read (or written) for one path access: `(L+1)` buckets.
    pub fn path_bytes(&self) -> u64 {
        u64::from(self.levels()) * self.bucket_bytes() as u64
    }

    /// Bytes moved by one full ORAM access (path read + path write).
    pub fn access_bytes(&self) -> u64 {
        2 * self.path_bytes()
    }

    /// Total untrusted-memory footprint of the tree in bytes.
    pub fn tree_bytes(&self) -> u64 {
        self.num_buckets() * self.bucket_bytes() as u64
    }

    /// Logical data capacity (`N × B`) in bytes.
    pub fn data_capacity_bytes(&self) -> u64 {
        self.num_blocks * self.block_bytes as u64
    }

    /// On-chip PosMap size in bits for a non-recursive design: `N` entries of
    /// `L` bits (§1.1).  Used by the area model and Figure 3.
    pub fn flat_posmap_bits(&self) -> u64 {
        self.num_blocks * u64::from(self.leaf_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gig_oram_matches_paper_geometry() {
        // 4 GB of 64 B blocks (Table 1): N = 2^26, Z = 4.
        let p = OramParams::new(1 << 26, 64, 4);
        assert_eq!(p.leaf_level(), 24);
        assert_eq!(p.levels(), 25);
        assert_eq!(p.bucket_bytes(), 320);
        // Path read ≈ 8 KB, full access ≈ 16 KB (Figure 7's data portion).
        assert_eq!(p.path_bytes(), 25 * 320);
        assert_eq!(p.access_bytes(), 2 * 25 * 320);
        // 50% utilisation: the tree occupies ~2x the data capacity.
        let util = p.data_capacity_bytes() as f64 / p.tree_bytes() as f64;
        assert!(util > 0.3 && util < 0.75, "utilisation {util}");
    }

    #[test]
    fn slot_capacity_is_at_least_twice_block_count() {
        for n in [1u64, 2, 100, 1 << 10, 1 << 20, (1 << 20) + 1] {
            let p = OramParams::new(n, 64, 4);
            let slots = p.z as u64 * (p.num_buckets() + 1);
            assert!(slots >= 2 * n, "N={n}: slots={slots}");
        }
    }

    #[test]
    fn bucket_bytes_respects_alignment() {
        let p = OramParams::new(1024, 64, 4);
        assert_eq!(p.bucket_bytes() % 64, 0);
        let tight = p.with_bucket_align(16);
        assert_eq!(tight.bucket_bytes() % 16, 0);
        assert!(tight.bucket_bytes() <= p.bucket_bytes());
    }

    #[test]
    fn phantom_parameterisation() {
        // Figure 9: 4 GB ORAM of 4 KB blocks, N = 2^20, L = 19, Z = 4.
        let p = OramParams::new(1 << 20, 4096, 4).with_leaf_level(19);
        assert_eq!(p.leaf_level(), 19);
        assert_eq!(p.levels(), 20);
        // Bucket ≈ 4 blocks of 4 KB.
        assert!(p.bucket_bytes() >= 4 * 4096);
        // Full access moves roughly (20 * 16.4 KB) * 2 ≈ 656 KB, i.e. ~40x the
        // 64 B design — the source of Figure 9's ~10x slowdown.
        assert!(p.access_bytes() > 600_000);
    }

    #[test]
    fn larger_capacity_adds_levels() {
        let a = OramParams::new(1 << 20, 64, 4);
        let b = OramParams::new(1 << 26, 64, 4);
        let c = OramParams::new(1 << 30, 64, 4);
        assert!(a.leaf_level() < b.leaf_level());
        assert!(b.leaf_level() < c.leaf_level());
        assert_eq!(c.leaf_level() - b.leaf_level(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_zero_blocks() {
        let _ = OramParams::new(0, 64, 4);
    }
}
