//! Error types for the ORAM backend.

use crate::types::BlockId;

/// Errors returned by the Path ORAM backend and the frontends built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OramError {
    /// The stash exceeded its configured capacity.  With Z ≥ 4 this has
    /// negligible probability under honest operation (§3.1.2); an adversary
    /// may also try to coerce it (§6.5.2), in which case the controller must
    /// halt.
    StashOverflow {
        /// Number of blocks in the stash when the overflow was detected.
        occupancy: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// A block address was outside the configured ORAM capacity.
    AddressOutOfRange {
        /// The offending address.
        addr: BlockId,
        /// The capacity (number of blocks).
        capacity: u64,
    },
    /// A leaf label was outside `[0, 2^L)`.
    LeafOutOfRange {
        /// The offending leaf.
        leaf: u64,
        /// Number of leaves.
        num_leaves: u64,
    },
    /// Write data had the wrong length for the configured block size.
    BlockSizeMismatch {
        /// Expected length in bytes.
        expected: usize,
        /// Provided length in bytes.
        actual: usize,
    },
    /// An `append` was issued for a block that already exists in the ORAM
    /// (the unified tree must never contain duplicates, §4.2.2).
    DuplicateAppend {
        /// The offending address.
        addr: BlockId,
    },
    /// A read/write/readrmv did not find the requested block on the fetched
    /// path or in the stash.  Under honest operation this indicates a leaf
    /// bookkeeping bug; under an active adversary it indicates tampering
    /// (§6.5.2) and must be treated like an integrity violation.
    BlockNotFound {
        /// The requested address.
        addr: BlockId,
    },
    /// PMMAC detected a MAC mismatch: the data returned from untrusted memory
    /// is not authentic or not fresh (§6.2.1).
    IntegrityViolation {
        /// Address of the block whose MAC failed.
        addr: BlockId,
    },
    /// A stored bucket could not be parsed (wrong length or corrupted
    /// framing); treated as tampering.
    MalformedBucket {
        /// Linear index of the offending bucket.
        bucket: u64,
    },
    /// The requested operation requires write data but none was supplied.
    MissingWriteData,
    /// The untrusted tree store failed at the I/O level (file creation,
    /// positional read/write, flush).  Carries a rendered description of the
    /// underlying OS error because `std::io::Error` is neither `Clone` nor
    /// `PartialEq`.
    Storage {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A persisted snapshot (state file or tree metadata) could not be used:
    /// wrong magic, unsupported version, truncated file, or inconsistent
    /// geometry.  Distinct from [`OramError::IntegrityViolation`], which is
    /// reserved for content that fails cryptographic verification.
    Snapshot {
        /// Human-readable description of what was wrong with the snapshot.
        detail: String,
    },
}

impl std::fmt::Display for OramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OramError::StashOverflow {
                occupancy,
                capacity,
            } => write!(
                f,
                "stash overflow: {occupancy} blocks exceeds capacity {capacity}"
            ),
            OramError::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "block address {addr} out of range for capacity {capacity}"
                )
            }
            OramError::LeafOutOfRange { leaf, num_leaves } => {
                write!(f, "leaf {leaf} out of range for {num_leaves} leaves")
            }
            OramError::BlockSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "block data length {actual} does not match block size {expected}"
                )
            }
            OramError::DuplicateAppend { addr } => {
                write!(
                    f,
                    "append of block {addr} which is already present in the ORAM"
                )
            }
            OramError::BlockNotFound { addr } => {
                write!(f, "block {addr} was not found on its path or in the stash")
            }
            OramError::IntegrityViolation { addr } => {
                write!(f, "integrity violation detected on block {addr}")
            }
            OramError::MalformedBucket { bucket } => {
                write!(f, "bucket {bucket} could not be parsed")
            }
            OramError::MissingWriteData => write!(f, "write operation requires data"),
            OramError::Storage { detail } => write!(f, "tree storage failure: {detail}"),
            OramError::Snapshot { detail } => write!(f, "unusable snapshot: {detail}"),
        }
    }
}

impl std::error::Error for OramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_lowercase_messages() {
        let e = OramError::StashOverflow {
            occupancy: 201,
            capacity: 200,
        };
        let msg = e.to_string();
        assert!(msg.contains("201"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OramError>();
    }
}
