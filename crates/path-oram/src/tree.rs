//! Index arithmetic for the binary ORAM tree.
//!
//! Buckets are identified by a *linear index* in level order (heap layout):
//! the root is bucket 0, and the bucket at `(level, index_in_level)` has
//! linear index `2^level - 1 + index_in_level`.  A leaf label `l ∈ [0, 2^L)`
//! identifies the path whose bucket at level `d` is the ancestor
//! `l >> (L - d)` within that level.

use crate::types::Leaf;

/// Linear (heap-order) index of the bucket at `(level, index_in_level)`.
pub fn bucket_linear_index(level: u32, index_in_level: u64) -> u64 {
    ((1u64 << level) - 1) + index_in_level
}

/// The `(level, index_in_level)` coordinates of a linear bucket index.
pub fn bucket_coordinates(linear: u64) -> (u32, u64) {
    let level = 63 - (linear + 1).leading_zeros();
    let index = linear + 1 - (1u64 << level);
    (level, index)
}

/// Index within its level of the bucket on path `leaf` at `level`, for a tree
/// with leaf level `leaf_level`.
pub fn path_index_at_level(leaf: Leaf, level: u32, leaf_level: u32) -> u64 {
    debug_assert!(level <= leaf_level);
    leaf >> (leaf_level - level)
}

/// Linear indices of every bucket on the path from the root to `leaf`, root
/// first.
pub fn path_linear_indices(leaf: Leaf, leaf_level: u32) -> Vec<u64> {
    let mut out = Vec::with_capacity(leaf_level as usize + 1);
    path_linear_indices_into(leaf, leaf_level, &mut out);
    out
}

/// Allocation-free variant of [`path_linear_indices`]: clears `out` and
/// fills it with the path, reusing its capacity.
pub fn path_linear_indices_into(leaf: Leaf, leaf_level: u32, out: &mut Vec<u64>) {
    out.clear();
    out.extend(
        (0..=leaf_level)
            .map(|level| bucket_linear_index(level, path_index_at_level(leaf, level, leaf_level))),
    );
}

/// Whether a block currently mapped to `block_leaf` may legally reside in the
/// bucket at `level` on the path to `path_leaf` (the Path ORAM invariant:
/// their paths must share the ancestor at that level).
pub fn block_can_reside(block_leaf: Leaf, path_leaf: Leaf, level: u32, leaf_level: u32) -> bool {
    path_index_at_level(block_leaf, level, leaf_level)
        == path_index_at_level(path_leaf, level, leaf_level)
}

/// Deepest level (closest to the leaves) at which a block mapped to
/// `block_leaf` may reside on the path to `path_leaf`.
pub fn deepest_common_level(block_leaf: Leaf, path_leaf: Leaf, leaf_level: u32) -> u32 {
    let diff = block_leaf ^ path_leaf;
    if diff == 0 {
        leaf_level
    } else {
        // The first differing bit (from the top of the L-bit labels) bounds
        // the shared prefix.
        let highest_diff_bit = 63 - diff.leading_zeros();
        leaf_level - (highest_diff_bit + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index_roundtrips_through_coordinates() {
        for level in 0..12u32 {
            for idx in [0u64, 1, (1 << level) - 1] {
                if idx >= (1 << level) {
                    continue;
                }
                let linear = bucket_linear_index(level, idx);
                assert_eq!(bucket_coordinates(linear), (level, idx));
            }
        }
    }

    #[test]
    fn root_is_bucket_zero() {
        assert_eq!(bucket_linear_index(0, 0), 0);
        assert_eq!(bucket_coordinates(0), (0, 0));
    }

    #[test]
    fn path_contains_one_bucket_per_level_and_ends_at_leaf() {
        let leaf_level = 5;
        let leaf = 0b10110;
        let path = path_linear_indices(leaf, leaf_level);
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], 0);
        assert_eq!(path[5], bucket_linear_index(5, leaf));
        // Every bucket is the parent of the next.
        for w in path.windows(2) {
            let (level, idx) = bucket_coordinates(w[1]);
            assert_eq!(bucket_coordinates(w[0]), (level - 1, idx / 2));
        }
    }

    #[test]
    fn block_can_reside_in_root_always_and_leaf_only_if_same() {
        let leaf_level = 8;
        for (a, b) in [(0u64, 255u64), (17, 17), (100, 101)] {
            assert!(block_can_reside(a, b, 0, leaf_level));
            assert_eq!(block_can_reside(a, b, leaf_level, leaf_level), a == b);
        }
    }

    #[test]
    fn deepest_common_level_matches_reside_predicate() {
        let leaf_level = 10;
        for a in [0u64, 1, 37, 512, 1023] {
            for b in [0u64, 1, 37, 512, 1023] {
                let deepest = deepest_common_level(a, b, leaf_level);
                assert!(block_can_reside(a, b, deepest, leaf_level));
                if deepest < leaf_level {
                    assert!(!block_can_reside(a, b, deepest + 1, leaf_level));
                }
            }
        }
    }
}
