//! Probabilistic bucket encryption.
//!
//! Every bucket in the ORAM tree is encrypted so that real and dummy blocks
//! are indistinguishable and rewritten buckets look fresh (§3.1).  The paper
//! discusses two seeding disciplines (§6.4):
//!
//! * [`EncryptionMode::PerBucketSeed`] — the scheme of Ren et al. \[26\]: each
//!   bucket stores a plaintext seed and is padded with
//!   `AES_K(BucketID || seed+1 || chunk)` when rewritten.  Under a *passive*
//!   adversary this is fine, but an *active* adversary can roll the plaintext
//!   seed back and force a one-time pad to be reused, leaking the XOR of two
//!   plaintexts.  Kept here to reproduce that attack.
//! * [`EncryptionMode::GlobalSeed`] — the paper's fix: a single monotonically
//!   increasing counter in the ORAM controller seeds every pad, so pads never
//!   repeat regardless of what the adversary does to memory.
//! * [`EncryptionMode::None`] — plaintext buckets, used only for large
//!   timing-oriented simulations where crypto adds nothing.

use crate::params::{OramParams, BUCKET_HEADER_BYTES};
use oram_crypto::ctr::{CtrKeystream, KeystreamSpan};
use oram_crypto::EngineKind;
use serde::{Deserialize, Serialize};

/// Which bucket-encryption discipline the backend uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EncryptionMode {
    /// No encryption (timing studies only).
    None,
    /// Per-bucket seeds stored in the clear (\[26\]); vulnerable to pad replay
    /// under an active adversary (§6.4).
    PerBucketSeed,
    /// A single in-controller global seed; every rewrite uses a fresh pad.
    #[default]
    GlobalSeed,
}

/// Encrypts and decrypts serialised buckets according to an
/// [`EncryptionMode`].
///
/// The 8-byte seed field at the start of each bucket image is always stored
/// in the clear (it is the counter-mode nonce); the remainder of the image is
/// XORed with the keystream.
#[derive(Debug, Clone)]
pub struct BucketCipher {
    mode: EncryptionMode,
    keystream: CtrKeystream,
    /// Monotonic controller-side counter used in [`EncryptionMode::GlobalSeed`].
    global_seed: u64,
}

impl BucketCipher {
    /// Creates a cipher with the given mode and AES session key.
    pub fn new(mode: EncryptionMode, key: [u8; 16]) -> Self {
        Self {
            mode,
            keystream: CtrKeystream::new(key),
            global_seed: 1,
        }
    }

    /// The encryption mode in use.
    pub fn mode(&self) -> EncryptionMode {
        self.mode
    }

    /// Current value of the controller's global seed counter.
    pub fn global_seed(&self) -> u64 {
        self.global_seed
    }

    /// Restores the controller's global seed counter from a snapshot.  The
    /// counter must never move backwards across a persist/resume cycle —
    /// pad freshness under [`EncryptionMode::GlobalSeed`] depends on it —
    /// so the only legitimate caller is the backend's resume path feeding
    /// back a value previously read from [`BucketCipher::global_seed`].
    pub fn set_global_seed(&mut self, seed: u64) {
        self.global_seed = seed;
    }

    /// The AES engine the keystream dispatches to (diagnostics/benchmarks).
    pub fn engine(&self) -> EngineKind {
        self.keystream.engine()
    }

    /// The seed a write-back must stamp into a bucket whose previous header
    /// held `old_seed` (0 for a never-written bucket): increments the
    /// per-bucket seed, draws and advances the global counter, or keeps the
    /// old value in plaintext mode.  This is the discipline half of
    /// [`BucketCipher::seal`]; the batched write-back path calls it per
    /// bucket and pads all buckets afterwards in one engine pass.
    pub fn writeback_seed(&mut self, old_seed: u64) -> u64 {
        match self.mode {
            EncryptionMode::None => old_seed,
            EncryptionMode::PerBucketSeed => old_seed.wrapping_add(1),
            EncryptionMode::GlobalSeed => {
                let seed = self.global_seed;
                self.global_seed = self.global_seed.wrapping_add(1);
                seed
            }
        }
    }

    /// Queues the keystream span for one bucket image that starts at byte
    /// `offset` of a larger buffer, with `seed` already stamped in (or read
    /// from) its header.  The 8-byte header itself is stored in the clear
    /// and excluded from the span.  No-op in plaintext mode.
    ///
    /// Spans queued for several buckets are paid off by a single
    /// [`BucketCipher::apply_spans`] call — the batched engine pass that
    /// seals or unseals a whole ORAM path per direction.
    pub fn push_span(
        &self,
        spans: &mut Vec<KeystreamSpan>,
        bucket_index: u64,
        seed: u64,
        offset: usize,
        params: &OramParams,
    ) {
        let Some(pad_seed) = self.pad_seed_for(bucket_index, seed) else {
            return;
        };
        spans.push(KeystreamSpan {
            seed: pad_seed,
            start: offset + BUCKET_HEADER_BYTES,
            len: params.bucket_sealed_bytes(),
        });
    }

    /// Pad seed for a bucket under the current discipline, or `None` in
    /// plaintext mode.  The single source of truth shared by the scalar
    /// ([`BucketCipher::seal`]/[`BucketCipher::open`]) and batched
    /// ([`BucketCipher::push_span`]) paths.
    fn pad_seed_for(&self, bucket_index: u64, seed: u64) -> Option<u128> {
        match self.mode {
            EncryptionMode::None => None,
            EncryptionMode::PerBucketSeed => Some(pad_seed_per_bucket(bucket_index, seed)),
            EncryptionMode::GlobalSeed => Some(pad_seed_global(seed)),
        }
    }

    /// XORs the pads for every queued span into `data` in one batched engine
    /// pass.  XOR is an involution, so the same call seals plaintext images
    /// and opens ciphertext images; which one it is depends only on what the
    /// caller queued.
    pub fn apply_spans(&self, spans: &[KeystreamSpan], data: &mut [u8]) {
        self.keystream.apply_batch(spans, data);
    }

    /// Encrypts a plaintext bucket image in place for writing to untrusted
    /// memory.  `bucket_index` is the bucket's linear index (the `BucketID`
    /// of §6.4); the plaintext image's first 8 bytes are overwritten with the
    /// seed chosen by the discipline.
    pub fn seal(&mut self, bucket_index: u64, image: &mut [u8]) {
        if self.mode == EncryptionMode::None {
            return;
        }
        let old_seed = u64::from_le_bytes(image[..8].try_into().expect("seed header"));
        let seed = self.writeback_seed(old_seed);
        image[..8].copy_from_slice(&seed.to_le_bytes());
        let pad_seed = self
            .pad_seed_for(bucket_index, seed)
            .expect("encrypted mode");
        self.keystream.apply(pad_seed, &mut image[8..]);
    }

    /// Decrypts an encrypted bucket image read from untrusted memory in
    /// place.
    pub fn open(&self, bucket_index: u64, image: &mut [u8]) {
        if image.len() < 8 {
            return;
        }
        let seed = u64::from_le_bytes(image[..8].try_into().expect("seed header"));
        if let Some(pad_seed) = self.pad_seed_for(bucket_index, seed) {
            self.keystream.apply(pad_seed, &mut image[8..]);
        }
    }

    /// Produces an encrypted image of an all-dummy bucket, used to initialise
    /// the tree.
    pub fn sealed_empty_bucket(&mut self, bucket_index: u64, params: &OramParams) -> Vec<u8> {
        let mut image = vec![0u8; params.bucket_bytes()];
        self.seal(bucket_index, &mut image);
        image
    }
}

/// Pad seed for the per-bucket-seed discipline: `BucketID || BucketSeed`.
fn pad_seed_per_bucket(bucket_index: u64, bucket_seed: u64) -> u128 {
    (u128::from(bucket_index) << 64) | u128::from(bucket_seed)
}

/// Pad seed for the global-seed discipline: just the global counter (the
/// bucket identity is irrelevant because the counter never repeats).
fn pad_seed_global(global_seed: u64) -> u128 {
    u128::from(global_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OramParams {
        OramParams::new(256, 32, 4)
    }

    #[test]
    fn seal_open_roundtrip_all_modes() {
        let p = params();
        for mode in [
            EncryptionMode::None,
            EncryptionMode::PerBucketSeed,
            EncryptionMode::GlobalSeed,
        ] {
            let mut cipher = BucketCipher::new(mode, [1u8; 16]);
            let mut image = vec![0u8; p.bucket_bytes()];
            image[100] = 0x5A;
            let original_payload = image[8..].to_vec();
            cipher.seal(7, &mut image);
            let mut opened = image.clone();
            cipher.open(7, &mut opened);
            assert_eq!(&opened[8..], &original_payload[..], "mode {mode:?}");
        }
    }

    #[test]
    fn encrypted_modes_actually_hide_payload() {
        let p = params();
        for mode in [EncryptionMode::PerBucketSeed, EncryptionMode::GlobalSeed] {
            let mut cipher = BucketCipher::new(mode, [1u8; 16]);
            let mut image = vec![0u8; p.bucket_bytes()];
            cipher.seal(0, &mut image);
            assert!(
                image[8..].iter().any(|&b| b != 0),
                "ciphertext should not be all zero for {mode:?}"
            );
        }
    }

    #[test]
    fn batched_spans_match_per_bucket_seal_and_open() {
        // A synthetic 5-bucket "path" in one buffer: sealing via
        // writeback_seed + push_span + one apply_spans pass must produce the
        // same ciphertext as per-bucket seal(); opening via spans must
        // restore the plaintext.
        let p = params();
        let bucket_bytes = p.bucket_bytes();
        for mode in [EncryptionMode::PerBucketSeed, EncryptionMode::GlobalSeed] {
            let mut scalar_cipher = BucketCipher::new(mode, [1u8; 16]);
            let mut batch_cipher = BucketCipher::new(mode, [1u8; 16]);
            let plain: Vec<u8> = (0..5 * bucket_bytes).map(|i| (i % 251) as u8).collect();

            // Scalar: seal each bucket individually.
            let mut scalar = plain.clone();
            for b in 0..5u64 {
                let image = &mut scalar[b as usize * bucket_bytes..(b as usize + 1) * bucket_bytes];
                image[..8].copy_from_slice(&(10 * b).to_le_bytes());
                scalar_cipher.seal(b, image);
            }

            // Batched: stamp headers, queue spans, one engine pass.
            let mut batched = plain.clone();
            let mut spans = Vec::new();
            for b in 0..5u64 {
                let offset = b as usize * bucket_bytes;
                let seed = batch_cipher.writeback_seed(10 * b);
                batched[offset..offset + 8].copy_from_slice(&seed.to_le_bytes());
                batch_cipher.push_span(&mut spans, b, seed, offset, &p);
            }
            batch_cipher.apply_spans(&spans, &mut batched);
            assert_eq!(batched, scalar, "mode {mode:?}");

            // Open batched: read seeds back out of the headers.
            let mut spans = Vec::new();
            for b in 0..5u64 {
                let offset = b as usize * bucket_bytes;
                let seed = u64::from_le_bytes(batched[offset..offset + 8].try_into().unwrap());
                batch_cipher.push_span(&mut spans, b, seed, offset, &p);
            }
            batch_cipher.apply_spans(&spans, &mut batched);
            // Payloads restored; headers hold the stamped seeds.
            for b in 0..5usize {
                assert_eq!(
                    &batched[b * bucket_bytes + 8..(b + 1) * bucket_bytes],
                    &plain[b * bucket_bytes + 8..(b + 1) * bucket_bytes],
                    "mode {mode:?}, bucket {b}"
                );
            }
        }
    }

    #[test]
    fn push_span_is_noop_in_plaintext_mode() {
        let cipher = BucketCipher::new(EncryptionMode::None, [1u8; 16]);
        let mut spans = Vec::new();
        cipher.push_span(&mut spans, 0, 0, 0, &params());
        assert!(spans.is_empty());
        let mut data = vec![7u8; 320];
        cipher.apply_spans(&spans, &mut data);
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn writeback_seed_follows_the_discipline() {
        let mut global = BucketCipher::new(EncryptionMode::GlobalSeed, [1u8; 16]);
        let first = global.global_seed();
        assert_eq!(global.writeback_seed(999), first);
        assert_eq!(global.writeback_seed(999), first + 1);

        let mut per_bucket = BucketCipher::new(EncryptionMode::PerBucketSeed, [1u8; 16]);
        assert_eq!(per_bucket.writeback_seed(41), 42);

        let mut plaintext = BucketCipher::new(EncryptionMode::None, [1u8; 16]);
        assert_eq!(plaintext.writeback_seed(41), 41);
    }

    #[test]
    fn global_seed_increments_on_every_seal() {
        let p = params();
        let mut cipher = BucketCipher::new(EncryptionMode::GlobalSeed, [1u8; 16]);
        let s0 = cipher.global_seed();
        let mut a = vec![0u8; p.bucket_bytes()];
        let mut b = vec![0u8; p.bucket_bytes()];
        cipher.seal(0, &mut a);
        cipher.seal(0, &mut b);
        assert_eq!(cipher.global_seed(), s0 + 2);
        // The two ciphertexts of identical plaintext differ (probabilistic
        // encryption).
        assert_ne!(a, b);
    }

    #[test]
    fn per_bucket_seed_reuses_pad_if_seed_rolled_back() {
        // Reproduces the §6.4 vulnerability precondition: with the seed field
        // rolled back, sealing twice produces the same pad.
        let p = params();
        let mut cipher = BucketCipher::new(EncryptionMode::PerBucketSeed, [1u8; 16]);
        let plaintext_a = {
            let mut v = vec![0u8; p.bucket_bytes()];
            v[50] = 0x11;
            v
        };
        let plaintext_b = {
            let mut v = vec![0u8; p.bucket_bytes()];
            v[50] = 0x2E;
            v
        };
        // Seal A with seed rolled to the same value twice.
        let mut ct_a = plaintext_a.clone();
        cipher.seal(3, &mut ct_a); // seed becomes 1
        let mut ct_b = plaintext_b.clone();
        // Adversary rolled the seed back to 0, so sealing uses seed 1 again.
        ct_b[..8].copy_from_slice(&0u64.to_le_bytes());
        cipher.seal(3, &mut ct_b);
        // Same pad: XOR of ciphertexts equals XOR of plaintexts.
        assert_eq!(ct_a[50] ^ ct_b[50], plaintext_a[50] ^ plaintext_b[50]);
    }

    #[test]
    fn global_seed_mode_immune_to_seed_rollback() {
        let p = params();
        let mut cipher = BucketCipher::new(EncryptionMode::GlobalSeed, [1u8; 16]);
        let mut ct_a = vec![0u8; p.bucket_bytes()];
        ct_a[50] = 0x11;
        cipher.seal(3, &mut ct_a);
        let mut ct_b = vec![0u8; p.bucket_bytes()];
        ct_b[50] = 0x2E;
        // Adversary cannot influence the controller-internal counter, so the
        // pad is fresh no matter what the header said before sealing.
        ct_b[..8].copy_from_slice(&0u64.to_le_bytes());
        cipher.seal(3, &mut ct_b);
        assert_ne!(ct_a[50] ^ ct_b[50], 0x11 ^ 0x2E);
    }
}
