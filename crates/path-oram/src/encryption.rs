//! Probabilistic bucket encryption.
//!
//! Every bucket in the ORAM tree is encrypted so that real and dummy blocks
//! are indistinguishable and rewritten buckets look fresh (§3.1).  The paper
//! discusses two seeding disciplines (§6.4):
//!
//! * [`EncryptionMode::PerBucketSeed`] — the scheme of Ren et al. [26]: each
//!   bucket stores a plaintext seed and is padded with
//!   `AES_K(BucketID || seed+1 || chunk)` when rewritten.  Under a *passive*
//!   adversary this is fine, but an *active* adversary can roll the plaintext
//!   seed back and force a one-time pad to be reused, leaking the XOR of two
//!   plaintexts.  Kept here to reproduce that attack.
//! * [`EncryptionMode::GlobalSeed`] — the paper's fix: a single monotonically
//!   increasing counter in the ORAM controller seeds every pad, so pads never
//!   repeat regardless of what the adversary does to memory.
//! * [`EncryptionMode::None`] — plaintext buckets, used only for large
//!   timing-oriented simulations where crypto adds nothing.

use crate::params::OramParams;
use oram_crypto::ctr::CtrKeystream;
use serde::{Deserialize, Serialize};

/// Which bucket-encryption discipline the backend uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EncryptionMode {
    /// No encryption (timing studies only).
    None,
    /// Per-bucket seeds stored in the clear ([26]); vulnerable to pad replay
    /// under an active adversary (§6.4).
    PerBucketSeed,
    /// A single in-controller global seed; every rewrite uses a fresh pad.
    #[default]
    GlobalSeed,
}

/// Encrypts and decrypts serialised buckets according to an
/// [`EncryptionMode`].
///
/// The 8-byte seed field at the start of each bucket image is always stored
/// in the clear (it is the counter-mode nonce); the remainder of the image is
/// XORed with the keystream.
#[derive(Debug, Clone)]
pub struct BucketCipher {
    mode: EncryptionMode,
    keystream: CtrKeystream,
    /// Monotonic controller-side counter used in [`EncryptionMode::GlobalSeed`].
    global_seed: u64,
}

impl BucketCipher {
    /// Creates a cipher with the given mode and AES session key.
    pub fn new(mode: EncryptionMode, key: [u8; 16]) -> Self {
        Self {
            mode,
            keystream: CtrKeystream::new(key),
            global_seed: 1,
        }
    }

    /// The encryption mode in use.
    pub fn mode(&self) -> EncryptionMode {
        self.mode
    }

    /// Current value of the controller's global seed counter.
    pub fn global_seed(&self) -> u64 {
        self.global_seed
    }

    /// Encrypts a plaintext bucket image in place for writing to untrusted
    /// memory.  `bucket_index` is the bucket's linear index (the `BucketID`
    /// of §6.4); the plaintext image's first 8 bytes are overwritten with the
    /// seed chosen by the discipline.
    pub fn seal(&mut self, bucket_index: u64, image: &mut [u8]) {
        match self.mode {
            EncryptionMode::None => {}
            EncryptionMode::PerBucketSeed => {
                // Increment the seed that was stored in the bucket we read
                // (or 0 for a fresh bucket) and re-pad with it.
                let old_seed = u64::from_le_bytes(image[..8].try_into().expect("seed header"));
                let new_seed = old_seed.wrapping_add(1);
                image[..8].copy_from_slice(&new_seed.to_le_bytes());
                let pad_seed = pad_seed_per_bucket(bucket_index, new_seed);
                self.keystream.apply(pad_seed, &mut image[8..]);
            }
            EncryptionMode::GlobalSeed => {
                let seed = self.global_seed;
                self.global_seed = self.global_seed.wrapping_add(1);
                image[..8].copy_from_slice(&seed.to_le_bytes());
                self.keystream.apply(pad_seed_global(seed), &mut image[8..]);
            }
        }
    }

    /// Decrypts an encrypted bucket image read from untrusted memory in
    /// place.
    pub fn open(&self, bucket_index: u64, image: &mut [u8]) {
        if image.len() < 8 {
            return;
        }
        let seed = u64::from_le_bytes(image[..8].try_into().expect("seed header"));
        match self.mode {
            EncryptionMode::None => {}
            EncryptionMode::PerBucketSeed => {
                self.keystream
                    .apply(pad_seed_per_bucket(bucket_index, seed), &mut image[8..]);
            }
            EncryptionMode::GlobalSeed => {
                self.keystream.apply(pad_seed_global(seed), &mut image[8..]);
            }
        }
    }

    /// Produces an encrypted image of an all-dummy bucket, used to initialise
    /// the tree.
    pub fn sealed_empty_bucket(&mut self, bucket_index: u64, params: &OramParams) -> Vec<u8> {
        let mut image = vec![0u8; params.bucket_bytes()];
        self.seal(bucket_index, &mut image);
        image
    }
}

/// Pad seed for the per-bucket-seed discipline: `BucketID || BucketSeed`.
fn pad_seed_per_bucket(bucket_index: u64, bucket_seed: u64) -> u128 {
    (u128::from(bucket_index) << 64) | u128::from(bucket_seed)
}

/// Pad seed for the global-seed discipline: just the global counter (the
/// bucket identity is irrelevant because the counter never repeats).
fn pad_seed_global(global_seed: u64) -> u128 {
    u128::from(global_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OramParams {
        OramParams::new(256, 32, 4)
    }

    #[test]
    fn seal_open_roundtrip_all_modes() {
        let p = params();
        for mode in [
            EncryptionMode::None,
            EncryptionMode::PerBucketSeed,
            EncryptionMode::GlobalSeed,
        ] {
            let mut cipher = BucketCipher::new(mode, [1u8; 16]);
            let mut image = vec![0u8; p.bucket_bytes()];
            image[100] = 0x5A;
            let original_payload = image[8..].to_vec();
            cipher.seal(7, &mut image);
            let mut opened = image.clone();
            cipher.open(7, &mut opened);
            assert_eq!(&opened[8..], &original_payload[..], "mode {mode:?}");
        }
    }

    #[test]
    fn encrypted_modes_actually_hide_payload() {
        let p = params();
        for mode in [EncryptionMode::PerBucketSeed, EncryptionMode::GlobalSeed] {
            let mut cipher = BucketCipher::new(mode, [1u8; 16]);
            let mut image = vec![0u8; p.bucket_bytes()];
            cipher.seal(0, &mut image);
            assert!(
                image[8..].iter().any(|&b| b != 0),
                "ciphertext should not be all zero for {mode:?}"
            );
        }
    }

    #[test]
    fn global_seed_increments_on_every_seal() {
        let p = params();
        let mut cipher = BucketCipher::new(EncryptionMode::GlobalSeed, [1u8; 16]);
        let s0 = cipher.global_seed();
        let mut a = vec![0u8; p.bucket_bytes()];
        let mut b = vec![0u8; p.bucket_bytes()];
        cipher.seal(0, &mut a);
        cipher.seal(0, &mut b);
        assert_eq!(cipher.global_seed(), s0 + 2);
        // The two ciphertexts of identical plaintext differ (probabilistic
        // encryption).
        assert_ne!(a, b);
    }

    #[test]
    fn per_bucket_seed_reuses_pad_if_seed_rolled_back() {
        // Reproduces the §6.4 vulnerability precondition: with the seed field
        // rolled back, sealing twice produces the same pad.
        let p = params();
        let mut cipher = BucketCipher::new(EncryptionMode::PerBucketSeed, [1u8; 16]);
        let plaintext_a = {
            let mut v = vec![0u8; p.bucket_bytes()];
            v[50] = 0x11;
            v
        };
        let plaintext_b = {
            let mut v = vec![0u8; p.bucket_bytes()];
            v[50] = 0x2E;
            v
        };
        // Seal A with seed rolled to the same value twice.
        let mut ct_a = plaintext_a.clone();
        cipher.seal(3, &mut ct_a); // seed becomes 1
        let mut ct_b = plaintext_b.clone();
        // Adversary rolled the seed back to 0, so sealing uses seed 1 again.
        ct_b[..8].copy_from_slice(&0u64.to_le_bytes());
        cipher.seal(3, &mut ct_b);
        // Same pad: XOR of ciphertexts equals XOR of plaintexts.
        assert_eq!(ct_a[50] ^ ct_b[50], plaintext_a[50] ^ plaintext_b[50]);
    }

    #[test]
    fn global_seed_mode_immune_to_seed_rollback() {
        let p = params();
        let mut cipher = BucketCipher::new(EncryptionMode::GlobalSeed, [1u8; 16]);
        let mut ct_a = vec![0u8; p.bucket_bytes()];
        ct_a[50] = 0x11;
        cipher.seal(3, &mut ct_a);
        let mut ct_b = vec![0u8; p.bucket_bytes()];
        ct_b[50] = 0x2E;
        // Adversary cannot influence the controller-internal counter, so the
        // pad is fresh no matter what the header said before sealing.
        ct_b[..8].copy_from_slice(&0u64.to_le_bytes());
        cipher.seal(3, &mut ct_b);
        assert_ne!(ct_a[50] ^ ct_b[50], 0x11 ^ 0x2E);
    }
}
