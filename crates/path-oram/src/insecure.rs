//! An *insecure* flat-memory backend: the `Insecure` scheme point of the
//! evaluation, and a fast functional stand-in for the Path ORAM machinery.
//!
//! [`InsecureBackend`] implements [`OramBackend`] over a plain hash map: no
//! tree, no stash, no encryption, no obliviousness — an adversary observing
//! it learns the full access pattern.  It exists for two purposes:
//!
//! 1. it is the "no ORAM" baseline every slowdown in the paper is measured
//!    against (the denominator of Figures 6 and 8), and
//! 2. it proves the frontends really are backend-generic: a
//!    `FreecursiveOram<InsecureBackend>` runs the complete PLB / compressed
//!    PosMap / PMMAC logic at hash-map speed, which makes large functional
//!    test workloads cheap.
//!
//! Leaf arguments are accepted and ignored: correctness of this backend never
//! depends on the caller's position map, which also makes it useful for
//! isolating frontend bugs (a wrong leaf that would surface as
//! [`OramError::BlockNotFound`] on the real backend is invisible here).

use crate::backend::OramBackend;
use crate::encryption::EncryptionMode;
use crate::error::OramError;
use crate::params::OramParams;
use crate::stats::BackendStats;
use crate::types::{AccessOp, BlockData, BlockId, Leaf};
use std::collections::HashMap;

/// A flat, unencrypted, non-oblivious [`OramBackend`] implementation.
#[derive(Debug, Clone)]
pub struct InsecureBackend {
    params: OramParams,
    blocks: HashMap<BlockId, BlockData>,
    stats: BackendStats,
}

impl InsecureBackend {
    /// Creates an empty flat backend for the given geometry (only
    /// `block_bytes` and the byte-accounting figures of `params` are used).
    pub fn new(params: OramParams) -> Self {
        Self {
            params,
            blocks: HashMap::new(),
            stats: BackendStats::default(),
        }
    }

    /// Number of blocks currently stored.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether a block address is currently stored.
    pub fn is_resident(&self, addr: BlockId) -> bool {
        self.blocks.contains_key(&addr)
    }
}

impl OramBackend for InsecureBackend {
    fn new_backend(
        params: OramParams,
        _encryption: EncryptionMode,
        _key: [u8; 16],
        _seed: u64,
    ) -> Result<Self, OramError> {
        Ok(Self::new(params))
    }

    fn params(&self) -> &OramParams {
        &self.params
    }

    fn access_into(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        _leaf: Leaf,
        _new_leaf: Leaf,
        data: Option<&[u8]>,
        out: &mut Vec<u8>,
    ) -> Result<bool, OramError> {
        out.clear();
        if let Some(d) = data {
            if d.len() != self.params.block_bytes {
                return Err(OramError::BlockSizeMismatch {
                    expected: self.params.block_bytes,
                    actual: d.len(),
                });
            }
        }
        let block_bytes = self.params.block_bytes as u64;
        let has_data = match op {
            AccessOp::Read => {
                self.stats.path_accesses += 1;
                self.stats.bytes_read += block_bytes;
                match self.blocks.get(&addr) {
                    Some(payload) => out.extend_from_slice(payload),
                    None => out.resize(self.params.block_bytes, 0),
                }
                true
            }
            AccessOp::Write => {
                let payload = data.ok_or(OramError::MissingWriteData)?.to_vec();
                self.stats.path_accesses += 1;
                self.stats.bytes_written += block_bytes;
                self.blocks.insert(addr, payload);
                false
            }
            AccessOp::ReadRmv => {
                self.stats.path_accesses += 1;
                self.stats.bytes_read += block_bytes;
                match self.blocks.remove(&addr) {
                    Some(payload) => out.extend_from_slice(&payload),
                    None => out.resize(self.params.block_bytes, 0),
                }
                true
            }
            AccessOp::Append => {
                if self.blocks.contains_key(&addr) {
                    return Err(OramError::DuplicateAppend { addr });
                }
                let payload = data.ok_or(OramError::MissingWriteData)?.to_vec();
                self.stats.appends += 1;
                self.stats.bytes_written += block_bytes;
                self.blocks.insert(addr, payload);
                false
            }
        };
        Ok(has_data)
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<(), OramError> {
        // No external tree: the whole backend — blocks (sorted for a
        // canonical encoding) plus stats — rides in the state bytes.
        use crate::snapshot::{put_bytes, put_u64};
        let mut addrs: Vec<BlockId> = self.blocks.keys().copied().collect();
        addrs.sort_unstable();
        put_u64(out, addrs.len() as u64);
        for addr in addrs {
            put_u64(out, addr);
            put_bytes(out, &self.blocks[&addr]);
        }
        self.stats.save(out);
        Ok(())
    }

    fn persist_tree(&self, _dir: &std::path::Path, _label: u32) -> Result<(), OramError> {
        // Nothing outside the state bytes to persist.
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_backend(
        params: OramParams,
        _encryption: EncryptionMode,
        _key: [u8; 16],
        _seed: u64,
        _storage: &crate::StorageKind,
        _durability: crate::Durability,
        _dir: &std::path::Path,
        _label: u32,
        state: &[u8],
    ) -> Result<Self, OramError> {
        let mut backend = Self::new(params);
        let mut r = crate::snapshot::SnapReader::new(state);
        let count = r.len(r.remaining() / 8)?;
        for _ in 0..count {
            let addr = r.u64()?;
            let payload = r.bytes()?.to_vec();
            backend.blocks.insert(addr, payload);
        }
        backend.stats = BackendStats::load(&mut r)?;
        r.finish()?;
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> InsecureBackend {
        InsecureBackend::new(OramParams::new(256, 32, 4))
    }

    #[test]
    fn flat_semantics_match_the_backend_contract() {
        let mut b = backend();
        // Never-written blocks read as zero.
        let out = b.access(AccessOp::Read, 9, 0, 0, None).unwrap().unwrap();
        assert_eq!(out, vec![0u8; 32]);
        // Write then read, leaves irrelevant.
        b.access(AccessOp::Write, 9, 3, 7, Some(&[5u8; 32]))
            .unwrap();
        let out = b.access(AccessOp::Read, 9, 99, 1, None).unwrap().unwrap();
        assert_eq!(out, vec![5u8; 32]);
        // ReadRmv removes; Append restores; duplicate append rejected.
        let out = b.access(AccessOp::ReadRmv, 9, 0, 0, None).unwrap().unwrap();
        assert_eq!(out, vec![5u8; 32]);
        assert!(!b.is_resident(9));
        b.access(AccessOp::Append, 9, 0, 0, Some(&out)).unwrap();
        assert_eq!(
            b.access(AccessOp::Append, 9, 0, 0, Some(&out)),
            Err(OramError::DuplicateAppend { addr: 9 })
        );
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let mut b = backend();
        assert_eq!(
            b.access(AccessOp::Write, 0, 0, 0, Some(&[1u8; 31])),
            Err(OramError::BlockSizeMismatch {
                expected: 32,
                actual: 31
            })
        );
    }

    #[test]
    fn stats_count_accesses_and_appends() {
        let mut b = backend();
        b.access(AccessOp::Write, 1, 0, 0, Some(&[0u8; 32]))
            .unwrap();
        b.access(AccessOp::Read, 1, 0, 0, None).unwrap();
        b.access(AccessOp::ReadRmv, 1, 0, 0, None).unwrap();
        b.access(AccessOp::Append, 1, 0, 0, Some(&[0u8; 32]))
            .unwrap();
        assert_eq!(b.stats().path_accesses, 3);
        assert_eq!(b.stats().appends, 1);
        b.reset_stats();
        assert_eq!(b.stats(), &BackendStats::default());
    }
}
