//! Core value types shared across the ORAM backend and frontends.

use serde::{Deserialize, Serialize};

/// A program-visible block address (the unit requested by the LLC, e.g. a
/// cache line address).  PosMap blocks live in the same address space with a
/// level tag folded into the high bits (see `posmap::addressing`).
pub type BlockId = u64;

/// A leaf label in `[0, 2^L)` identifying a root-to-leaf path of the ORAM
/// tree.
pub type Leaf = u64;

/// The payload of one ORAM block (fixed length, set by
/// [`crate::OramParams::block_bytes`]).
pub type BlockData = Vec<u8>;

/// The operations the Backend supports (§3.1 and §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOp {
    /// Read the block and leave it in the stash/tree, remapped to a new leaf.
    Read,
    /// Overwrite the block's contents and remap it to a new leaf.
    Write,
    /// Read the block and *remove* it from the ORAM (used for PLB refills,
    /// §4.2.2).  The caller becomes responsible for appending it back later.
    ReadRmv,
    /// Insert a block into the stash without any tree access (used for PLB
    /// evictions, §4.2.2).  The block must not currently exist in the ORAM.
    Append,
}

impl AccessOp {
    /// Whether this operation reads and rewrites a tree path.
    pub fn touches_path(self) -> bool {
        !matches!(self, AccessOp::Append)
    }
}

/// A block held in the stash or parsed out of a bucket: its address, current
/// leaf and payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OramBlock {
    /// Block address.
    pub addr: BlockId,
    /// Leaf the block is currently mapped to.
    pub leaf: Leaf,
    /// Block payload.
    pub data: BlockData,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_append_skips_the_path() {
        assert!(AccessOp::Read.touches_path());
        assert!(AccessOp::Write.touches_path());
        assert!(AccessOp::ReadRmv.touches_path());
        assert!(!AccessOp::Append.touches_path());
    }
}
