//! The snapshot wire format: hand-rolled, versioned, length-prefixed
//! serialisation shared by the backend's `save_state` and the frontends'
//! whole-instance `persist`/`resume`.
//!
//! The workspace is offline — the `serde` dependency is a no-op shim — so
//! every persisted structure is written field by field through the helpers
//! here.  All integers are little-endian; variable-length payloads are
//! length-prefixed with a `u64`.
//!
//! # State-file framing
//!
//! [`write_state_file`] / [`read_state_file`] wrap a payload in the framing
//! every snapshot state file uses:
//!
//! ```text
//! magic "FORS" (4 B) ‖ version u16 ‖ kind u8 ‖ reserved u8 ‖
//! payload_len u64 ‖ payload ‖ SHA3-224(everything before this field) (28 B)
//! ```
//!
//! The digest covers the header too, so a flipped bit *anywhere* in the file
//! — including the version byte — surfaces as
//! [`OramError::IntegrityViolation`] rather than a misparse.  Genuine
//! version mismatches (a well-formed file written by a different format
//! revision, digest intact) surface as [`OramError::Snapshot`], as do
//! truncated files.  This is a *corruption* check, not an authenticity
//! proof: the digest is unkeyed, so an adversary who can rewrite the whole
//! state file consistently defeats it — the state file models the
//! controller's trusted on-chip state, which the paper's threat model
//! assumes the adversary cannot touch (§2).

use crate::error::OramError;
use oram_crypto::Sha3_224;

/// Magic bytes opening every snapshot state file ("Freecursive ORAM
/// Snapshot").
pub const STATE_MAGIC: [u8; 4] = *b"FORS";

/// Current snapshot format version.  Version 2 added the WAL sequence
/// barrier to tree metadata and controller state (see [`crate::wal`]);
/// version-1 files are rejected with a clean version error.
pub const STATE_VERSION: u16 = 2;

/// SHA3-224 digest length, the integrity trailer of every state file.
pub const DIGEST_BYTES: usize = 28;

/// A truncated-input error at position `at`.
fn short(what: &str, at: usize) -> OramError {
    OramError::Snapshot {
        detail: format!("truncated snapshot: ran out of bytes reading {what} at offset {at}"),
    }
}

// ---------------------------------------------------------------------
// Writer helpers (plain functions over a `Vec<u8>` sink).
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16` (little-endian).
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends an `Option<u64>` as a presence byte plus the value.
pub fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
        None => out.push(0),
    }
}

/// Appends a `u64`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// A bounds-checked cursor over snapshot bytes; every overrun becomes an
/// [`OramError::Snapshot`] instead of a panic.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], OramError> {
        if self.remaining() < n {
            return Err(short("raw bytes", self.pos));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation.
    pub fn u8(&mut self) -> Result<u8, OramError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation.
    pub fn u16(&mut self) -> Result<u16, OramError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 B")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation.
    pub fn u32(&mut self) -> Result<u32, OramError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 B")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation.
    pub fn u64(&mut self) -> Result<u64, OramError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 B")))
    }

    /// Reads a `u64` and checks it fits a `usize` and does not exceed
    /// `limit` (guarding against absurd length prefixes in corrupt files).
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation or an implausible length.
    pub fn len(&mut self, limit: usize) -> Result<usize, OramError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| OramError::Snapshot {
            detail: format!("length prefix {v} overflows usize"),
        })?;
        if v > limit {
            return Err(OramError::Snapshot {
                detail: format!("length prefix {v} exceeds plausible bound {limit}"),
            });
        }
        Ok(v)
    }

    /// Reads a `bool` byte (0 or 1).
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation or a byte that is neither.
    pub fn bool(&mut self) -> Result<bool, OramError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(OramError::Snapshot {
                detail: format!("invalid bool byte {other}"),
            }),
        }
    }

    /// Reads an `Option<u64>` written by [`put_opt_u64`].
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation or an invalid presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, OramError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a `u64`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation.
    pub fn bytes(&mut self) -> Result<&'a [u8], OramError> {
        let n = self.len(self.remaining())?;
        self.take(n)
    }

    /// Asserts the reader consumed everything (snapshot sections must be
    /// exact, trailing garbage means a format drift).
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] if bytes remain.
    pub fn finish(self) -> Result<(), OramError> {
        if self.remaining() != 0 {
            return Err(OramError::Snapshot {
                detail: format!("{} unconsumed snapshot bytes", self.remaining()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// State-file framing.
// ---------------------------------------------------------------------

/// Serialises a state file: framing header, payload, SHA3-224 trailer.
pub fn seal_state(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + 1 + 1 + 8 + payload.len() + DIGEST_BYTES);
    out.extend_from_slice(&STATE_MAGIC);
    put_u16(&mut out, STATE_VERSION);
    put_u8(&mut out, kind);
    put_u8(&mut out, 0);
    put_bytes(&mut out, payload);
    let digest = Sha3_224::digest(&out);
    out.extend_from_slice(&digest);
    out
}

/// Parses a state file produced by [`seal_state`], returning `(kind,
/// payload)`.
///
/// # Errors
///
/// * [`OramError::IntegrityViolation`] when the digest does not match — a
///   flipped bit anywhere in the file.
/// * [`OramError::Snapshot`] for truncation, wrong magic, or an unsupported
///   (but consistently-digested) version.
pub fn open_state(data: &[u8]) -> Result<(u8, &[u8]), OramError> {
    const HEADER: usize = 4 + 2 + 1 + 1 + 8;
    if data.len() < HEADER + DIGEST_BYTES {
        return Err(OramError::Snapshot {
            detail: format!("state file too short ({} bytes)", data.len()),
        });
    }
    let (body, trailer) = data.split_at(data.len() - DIGEST_BYTES);
    let digest = Sha3_224::digest(body);
    if digest[..] != *trailer {
        // The whole file (header included) is covered, so any corruption —
        // header, payload or trailer — lands here, never in a misparse.
        return Err(OramError::IntegrityViolation { addr: u64::MAX });
    }
    let mut r = SnapReader::new(body);
    let magic = r.take(4)?;
    if magic != STATE_MAGIC {
        return Err(OramError::Snapshot {
            detail: "state file has wrong magic".into(),
        });
    }
    let version = r.u16()?;
    if version != STATE_VERSION {
        return Err(OramError::Snapshot {
            detail: format!("unsupported snapshot version {version} (expected {STATE_VERSION})"),
        });
    }
    let kind = r.u8()?;
    let _reserved = r.u8()?;
    let payload = r.bytes()?;
    r.finish()?;
    Ok((kind, payload))
}

/// Writes a sealed state file to `path` atomically *and durably*: the
/// sealed bytes go to a sibling temp file which is fsynced, renamed into
/// place, and pinned by an fsync of the parent directory.  A crash at any
/// point leaves either the old file or the new one — never a torn state
/// file, and never a rename that evaporates with the directory's dirty
/// metadata.
///
/// # Errors
///
/// [`OramError::Storage`] on any I/O failure.
pub fn write_state_file(path: &std::path::Path, kind: u8, payload: &[u8]) -> Result<(), OramError> {
    use std::io::Write;
    let sealed = seal_state(kind, payload);
    let tmp = path.with_extension("state.tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| OramError::Storage {
        detail: format!("creating {}: {e}", tmp.display()),
    })?;
    file.write_all(&sealed).map_err(|e| OramError::Storage {
        detail: format!("writing {}: {e}", tmp.display()),
    })?;
    // The temp file's bytes must be on stable storage *before* the rename:
    // otherwise the rename can survive a crash while the contents do not,
    // leaving a valid-looking path to a torn file.
    file.sync_all().map_err(|e| OramError::Storage {
        detail: format!("syncing {}: {e}", tmp.display()),
    })?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| OramError::Storage {
        detail: format!("renaming {} into place: {e}", tmp.display()),
    })?;
    // The rename itself lives in the directory's metadata; fsync it so the
    // new file is reachable after a crash (POSIX renames are atomic but not
    // durable until the directory is flushed).
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = std::fs::File::open(parent).map_err(|e| OramError::Storage {
            detail: format!("opening directory {}: {e}", parent.display()),
        })?;
        dir.sync_all().map_err(|e| OramError::Storage {
            detail: format!("syncing directory {}: {e}", parent.display()),
        })?;
    }
    Ok(())
}

/// Reads and verifies a state file, returning `(kind, payload)`.
///
/// Also removes an orphaned sibling temp file if one is lying around: a
/// crash inside [`write_state_file`] before the rename leaves a
/// `*.state.tmp` that is dead weight (the rename never happened, so `path`
/// still holds the previous good state) and would otherwise accumulate.
///
/// # Errors
///
/// [`OramError::Storage`] if the file cannot be read, otherwise as for
/// [`open_state`].
pub fn read_state_file(path: &std::path::Path) -> Result<(u8, Vec<u8>), OramError> {
    let tmp = path.with_extension("state.tmp");
    if tmp.exists() {
        // Best effort: a failure to clean up must not block a resume.
        let _ = std::fs::remove_file(&tmp);
    }
    let data = std::fs::read(path).map_err(|e| OramError::Storage {
        detail: format!("reading {}: {e}", path.display()),
    })?;
    let (kind, payload) = open_state(&data)?;
    Ok((kind, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_bool(&mut buf, true);
        put_opt_u64(&mut buf, None);
        put_opt_u64(&mut buf, Some(42));
        put_bytes(&mut buf, b"hello");
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 9);
        let mut r = SnapReader::new(&buf[..3]);
        assert!(matches!(r.u64(), Err(OramError::Snapshot { .. })));
        // Length prefix larger than the remaining bytes.
        let mut buf = Vec::new();
        put_u64(&mut buf, 1 << 40);
        let mut r = SnapReader::new(&buf);
        assert!(matches!(r.bytes(), Err(OramError::Snapshot { .. })));
    }

    #[test]
    fn state_file_roundtrips() {
        let sealed = seal_state(3, b"payload bytes");
        let (kind, payload) = open_state(&sealed).unwrap();
        assert_eq!(kind, 3);
        assert_eq!(payload, b"payload bytes");
    }

    #[test]
    fn any_flipped_bit_is_an_integrity_violation() {
        let sealed = seal_state(1, b"some state payload");
        for pos in 0..sealed.len() {
            let mut corrupt = sealed.clone();
            corrupt[pos] ^= 0x10;
            assert_eq!(
                open_state(&corrupt).unwrap_err(),
                OramError::IntegrityViolation { addr: u64::MAX },
                "flip at byte {pos}"
            );
        }
    }

    #[test]
    fn version_mismatch_with_valid_digest_is_a_snapshot_error() {
        // A well-formed file of a different version (digest recomputed, so
        // the corruption check passes) must fail as a version mismatch.
        let mut sealed = seal_state(1, b"payload");
        sealed.truncate(sealed.len() - DIGEST_BYTES);
        sealed[4..6].copy_from_slice(&99u16.to_le_bytes());
        let digest = Sha3_224::digest(&sealed);
        sealed.extend_from_slice(&digest);
        match open_state(&sealed) {
            Err(OramError::Snapshot { detail }) => assert!(detail.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn short_file_is_a_snapshot_error() {
        let sealed = seal_state(1, b"payload");
        for len in [0, 4, 10, DIGEST_BYTES] {
            assert!(matches!(
                open_state(&sealed[..len]),
                Err(OramError::Snapshot { .. })
            ));
        }
    }
}
