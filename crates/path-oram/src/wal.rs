//! Write-ahead logging for the file-backed tree store.
//!
//! PR 5's snapshot machinery made the tree durable *between* `persist`
//! calls; this module makes the [`crate::FileStore`] crash-consistent
//! *between accesses*.  Every sealed path writeback is appended to a
//! `tree<label>.wal` redo log **before** the tree file is touched, so a
//! kill at any byte boundary leaves one of two recoverable states: the
//! record is complete (replay finishes the tree write) or it is torn
//! (replay stops at the tear and the tree write never started).
//!
//! Records carry the *already encrypted and MACed* path image the backend
//! was about to write — the log stores only ciphertext the untrusted
//! storage would have seen anyway, so WAL residue adds nothing to the
//! adversary's view.  Each record is framed with a magic, a length prefix,
//! a monotonic sequence number and a CRC-64 checksum, so replay accepts
//! exactly the maximal valid prefix and treats the first malformed record
//! as the end of history.  The checksum is a torn-write detector, not a
//! MAC — deliberate tampering with a replayed image is caught by the
//! bucket cipher's own MAC on the next read, exactly as it would be for
//! bytes tampered in the tree file itself (the WAL sits in the same
//! untrusted-storage trust domain, so a crypto digest here would add cost
//! on every writeback without adding protection).
//!
//! ```text
//! tree<label>.wal:
//!   header:  magic "FWAL" (4) ‖ base_seq u64 ‖ bucket_bytes u64 ‖ CRC-64 (8)
//!   record*: magic "FREC" (4) ‖ body_len u32 ‖ body ‖ CRC-64(magic‖len‖body) (8)
//!   body:    seq u64 ‖ n u32 ‖ indices n×u64 ‖ images n×bucket_bytes
//! ```
//!
//! Sequence numbers are global per tree, not per log generation: the
//! header records `base_seq` (the last sequence number already compacted
//! into the checkpoint) and the first record must carry `base_seq + 1`.
//! Checkpointing (see `FileStore::checkpoint`) folds the applied records
//! into the `tree<label>.meta` snapshot and truncates the log back to a
//! bare header.  Records are full bucket post-images, so replay is
//! idempotent — replaying an already-applied record rewrites the same
//! bytes — which is what makes the crash windows around checkpointing
//! harmless.
//!
//! A record carries at most [`MAX_RECORD_BUCKETS`] buckets, and a record's
//! indices need not form a root-to-leaf path — any ascending index list is
//! valid.  Two non-path writers rely on this: the batch scheduler's
//! `end_batch` flush (deferred top-level buckets, written in ascending
//! chunks of ≤ 64 so every durable mutation advances the sequence number
//! and the snapshot barrier stays sound mid-flush) and the tiered store's
//! spill-tier suffixes.  The tiered store's *treetop* writes, by contrast,
//! are volatile arena writes and never reach the log — the crash-safety
//! argument for that exemption lives with `TieredStore`, and the
//! system-wide durability state machine is drawn in `docs/ARCHITECTURE.md`
//! at the workspace root.

use crate::error::OramError;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"FWAL";

/// Magic bytes opening each WAL record.
pub const REC_MAGIC: [u8; 4] = *b"FREC";

/// Checksum trailer length (one little-endian CRC-64).
const CHECKSUM_BYTES: usize = 8;

/// Header length: magic + base_seq + bucket_bytes + checksum.
const HEADER_LEN: usize = 4 + 8 + 8 + CHECKSUM_BYTES;

/// Record prefix length: magic + body length.
const REC_PREFIX: usize = 4 + 4;

/// Upper bound on buckets per record (a root-to-leaf path; matches the
/// stack bound of the file store's coalesced reads).
pub const MAX_RECORD_BUCKETS: usize = 64;

/// When the write-ahead log reaches disk.
///
/// Selected on `OramBuilder::durability`, threaded through the frontend
/// configs to [`crate::FileStore`].  The memory store ignores it (there is
/// nothing to make durable), as do backends without untrusted tree storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No write-ahead log (the default).  Matches the pre-WAL behaviour:
    /// the tree is consistent only at successful `persist` boundaries, and
    /// a crash between them can lose or tear in-place tree writes.
    #[default]
    None,
    /// Log every writeback, fsync the log every `n` records.  A crash
    /// loses at most the last `n - 1` logged writebacks (plus whatever the
    /// OS had not yet flushed of the torn record); recovery always lands
    /// on a consistent prefix of the access history.
    Batch(u32),
    /// Log every writeback and fsync the log before the tree write starts.
    /// Every acknowledged access is durable.
    Strict,
}

impl Durability {
    /// Parses an `ORAM_DURABILITY`-style selector: `none` (or empty)
    /// selects [`Durability::None`], `strict` selects
    /// [`Durability::Strict`], `batch:<n>` (with `n ≥ 1`) selects
    /// [`Durability::Batch`].  Matching is ASCII-case-insensitive.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] for any other value — an unrecognised
    /// selector is a configuration mistake and must fail loudly, not fall
    /// back to the unlogged mode and silently un-protect exactly the data
    /// the operator asked to protect (the same contract as
    /// [`crate::StorageKind::parse`]).
    pub fn parse(value: &str) -> Result<Durability, OramError> {
        let v = value.trim();
        if v.is_empty() || v.eq_ignore_ascii_case("none") {
            Ok(Durability::None)
        } else if v.eq_ignore_ascii_case("strict") {
            Ok(Durability::Strict)
        } else if v
            .as_bytes()
            .get(..6)
            .is_some_and(|p| p.eq_ignore_ascii_case(b"batch:"))
        {
            let n = &v[6..];
            match n.trim().parse::<u32>() {
                Ok(n) if n >= 1 => Ok(Durability::Batch(n)),
                _ => Err(OramError::Storage {
                    detail: format!(
                        "invalid ORAM_DURABILITY batch interval {n:?}: expected an \
                         integer >= 1, as in \"batch:64\""
                    ),
                }),
            }
        } else {
            Err(OramError::Storage {
                detail: format!(
                    "unknown ORAM_DURABILITY value {value:?}: expected \"none\", \
                     \"strict\" or \"batch:<n>\""
                ),
            })
        }
    }

    /// Resolves the ambient default: `ORAM_DURABILITY=strict` or
    /// `ORAM_DURABILITY=batch:<n>` turn the WAL on for every constructed
    /// instance (the crash-recovery CI leg's hook, mirroring
    /// [`crate::StorageKind::from_env`]); unset selects
    /// [`Durability::None`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised `ORAM_DURABILITY` value (see
    /// [`Durability::parse`]): an operator who typed `stric` or
    /// `batch:abc` asked for durability and must not silently run
    /// without it.
    pub fn from_env() -> Durability {
        match std::env::var("ORAM_DURABILITY") {
            Ok(v) => Durability::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => Durability::None,
        }
    }

    /// Whether this discipline keeps a write-ahead log at all.
    pub fn is_logged(&self) -> bool {
        !matches!(self, Durability::None)
    }

    /// One-byte tag + payload for snapshots (see `freecursive`'s config
    /// codec).
    pub fn save(&self, out: &mut Vec<u8>) {
        match self {
            Durability::None => {
                crate::snapshot::put_u8(out, 0);
                crate::snapshot::put_u32(out, 0);
            }
            Durability::Batch(n) => {
                crate::snapshot::put_u8(out, 1);
                crate::snapshot::put_u32(out, *n);
            }
            Durability::Strict => {
                crate::snapshot::put_u8(out, 2);
                crate::snapshot::put_u32(out, 0);
            }
        }
    }

    /// Inverse of [`Durability::save`].
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation or an unknown tag.
    pub fn load(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Durability, OramError> {
        let tag = r.u8()?;
        let arg = r.u32()?;
        match tag {
            0 => Ok(Durability::None),
            1 => Ok(Durability::Batch(arg)),
            2 => Ok(Durability::Strict),
            other => Err(OramError::Snapshot {
                detail: format!("unknown durability tag {other}"),
            }),
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Durability::None => write!(f, "none"),
            Durability::Batch(n) => write!(f, "batch:{n}"),
            Durability::Strict => write!(f, "strict"),
        }
    }
}

/// WAL file path for tree `label` under `dir`.
pub fn wal_file_path(dir: &Path, label: u32) -> PathBuf {
    dir.join(format!("tree{label}.wal"))
}

/// CRC-64/XZ generator polynomial, bit-reflected.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

/// Slicing-by-8 lookup tables: `tables[0]` is the classic byte-at-a-time
/// table, `tables[t][b]` extends it so eight input bytes fold into the
/// running CRC with eight independent lookups per 64-bit word instead of
/// eight serial ones.  Byte-at-a-time costs ~18 µs per ~7 KB path record
/// on this repo's reference hardware — more than the path write it guards
/// — so the wide variant is not a luxury.
const fn crc64_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC64_TABLES: [[u64; 256]; 8] = crc64_tables();

/// CRC-64/XZ over `bytes`: the WAL's torn-write detector.  Runs on every
/// logged writeback, so it must be cheap relative to the path write it
/// guards; tamper *detection* is the bucket cipher's job (see the module
/// docs).
fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // Every index is masked to (or shifted into) 8 bits, so no lookup
        // can leave its table.
        let word = u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8])) ^ crc;
        crc = CRC64_TABLES[7][(word & 0xFF) as usize]
            ^ CRC64_TABLES[6][((word >> 8) & 0xFF) as usize]
            ^ CRC64_TABLES[5][((word >> 16) & 0xFF) as usize]
            ^ CRC64_TABLES[4][((word >> 24) & 0xFF) as usize]
            ^ CRC64_TABLES[3][((word >> 32) & 0xFF) as usize]
            ^ CRC64_TABLES[2][((word >> 40) & 0xFF) as usize]
            ^ CRC64_TABLES[1][((word >> 48) & 0xFF) as usize]
            ^ CRC64_TABLES[0][(word >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC64_TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> OramError {
    OramError::Storage {
        detail: format!("{context} {}: {e}", path.display()),
    }
}

/// What [`replay`] found in a WAL file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Whether the file header parsed and its checksum held.  A torn header
    /// (the crash window of a log truncation) means no record could be
    /// validated; the caller falls back to the checkpoint alone.
    pub header_valid: bool,
    /// `base_seq` from the header (0 when the header is invalid).
    pub base_seq: u64,
    /// Sequence number of the last record replayed (== `base_seq` when no
    /// record was).
    pub last_seq: u64,
    /// Number of records replayed.
    pub records: u64,
    /// Whether replay stopped at a torn/invalid record before the end of
    /// the file.
    pub torn_tail: bool,
}

/// Replays the checksum-valid prefix of the WAL at `path`, invoking
/// `apply(seq, indices, images)` for each valid record in order.  `images`
/// is `indices.len() * bucket_bytes` long.  Stops cleanly at the first
/// malformed record — bad magic, implausible length, checksum mismatch, or
/// a sequence break — and reports it as a torn tail rather than an error:
/// a torn tail is the *expected* shape of a crash.
///
/// Returns `Ok(None)` when no WAL file exists.
///
/// # Errors
///
/// [`OramError::Storage`] when the file exists but cannot be read, and
/// whatever `apply` returns (tree I/O failures must propagate — an
/// unapplied valid record is real data loss, unlike a torn tail).
// lint: no-panic
pub fn replay<F>(
    path: &Path,
    bucket_bytes: usize,
    mut apply: F,
) -> Result<Option<ReplaySummary>, OramError>
where
    F: FnMut(u64, &[u64], &[u8]) -> Result<(), OramError>,
{
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("reading WAL", path, e)),
    };
    let torn_header = ReplaySummary {
        header_valid: false,
        base_seq: 0,
        last_seq: 0,
        records: 0,
        torn_tail: true,
    };
    let Some(header) = data.get(..HEADER_LEN) else {
        return Ok(Some(torn_header));
    };
    let Some((header_body, header_checksum)) = split_checksum(header) else {
        return Ok(Some(torn_header));
    };
    if header_body.get(..4) != Some(&WAL_MAGIC[..])
        || crc64(header_body).to_le_bytes() != *header_checksum
    {
        return Ok(Some(torn_header));
    }
    let base_seq = read_u64(header_body, 4).unwrap_or(0);
    let wal_bucket_bytes = read_u64(header_body, 12).unwrap_or(0);
    if wal_bucket_bytes != bucket_bytes as u64 {
        // A WAL for a different geometry cannot be applied; its records
        // are for another tree entirely.  Treat the whole log as torn.
        return Ok(Some(torn_header));
    }

    let mut summary = ReplaySummary {
        header_valid: true,
        base_seq,
        last_seq: base_seq,
        records: 0,
        torn_tail: false,
    };
    let mut indices: Vec<u64> = Vec::with_capacity(MAX_RECORD_BUCKETS);
    let mut pos = HEADER_LEN;
    while pos < data.len() {
        // Record prefix: magic + body length.
        let Some(prefix) = data.get(pos..pos + REC_PREFIX) else {
            summary.torn_tail = true;
            break;
        };
        if prefix.get(..4) != Some(&REC_MAGIC[..]) {
            summary.torn_tail = true;
            break;
        }
        let body_len = read_u32(prefix, 4).unwrap_or(0) as usize;
        let body_start = pos + REC_PREFIX;
        let Some(body) = data.get(body_start..body_start + body_len) else {
            summary.torn_tail = true;
            break;
        };
        let checksum_start = body_start + body_len;
        let Some(checksum) = data.get(checksum_start..checksum_start + CHECKSUM_BYTES) else {
            summary.torn_tail = true;
            break;
        };
        let Some(framed) = data.get(pos..checksum_start) else {
            summary.torn_tail = true;
            break;
        };
        if crc64(framed).to_le_bytes()[..] != *checksum {
            summary.torn_tail = true;
            break;
        }
        // Checksum-valid body: seq ‖ n ‖ indices ‖ images.
        let (Some(seq), Some(n)) = (read_u64(body, 0), read_u32(body, 8)) else {
            summary.torn_tail = true;
            break;
        };
        let n = n as usize;
        if n == 0 || n > MAX_RECORD_BUCKETS || body_len != 12 + n * (8 + bucket_bytes) {
            summary.torn_tail = true;
            break;
        }
        if seq != summary.last_seq + 1 {
            // A sequence break: a log assembled from mixed generations, or
            // checksum-valid bytes that are not the next record.  History
            // ends here.
            summary.torn_tail = true;
            break;
        }
        indices.clear();
        for i in 0..n {
            let Some(index) = read_u64(body, 12 + i * 8) else {
                summary.torn_tail = true;
                break;
            };
            indices.push(index);
        }
        let images_start = 12 + n * 8;
        let Some(images) = body.get(images_start..) else {
            summary.torn_tail = true;
            break;
        };
        if indices.len() != n {
            break;
        }
        apply(seq, &indices, images)?;
        summary.last_seq = seq;
        summary.records += 1;
        pos = checksum_start + CHECKSUM_BYTES;
    }
    Ok(Some(summary))
}
// lint: end

/// Splits `bytes` into (body, checksum trailer); `None` if too short.
fn split_checksum(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let body_len = bytes.len().checked_sub(CHECKSUM_BYTES)?;
    Some((bytes.get(..body_len)?, bytes.get(body_len..)?))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

/// An open write-ahead log, owned by a live [`crate::FileStore`].
///
/// Appends are staged in a reusable scratch buffer and written with one
/// positional write, so the steady-state logging path allocates nothing
/// beyond its first use.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Byte offset one past the last complete record.
    end: u64,
    base_seq: u64,
    last_seq: u64,
    bucket_bytes: usize,
    durability: Durability,
    /// Records appended since the last fsync (Batch discipline).
    unsynced: u32,
    scratch: Vec<u8>,
    /// Fault injection (kill-point suite): remaining WAL bytes that may
    /// still reach the file.  An append that would exceed the budget
    /// writes only the budgeted prefix — a torn record, exactly what a
    /// kill mid-`write` leaves — and fails.
    crash_budget: Option<u64>,
}

impl Wal {
    /// Creates (or truncates) the WAL for tree `label` under `dir`,
    /// starting a new log generation at `base_seq`.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create(
        dir: &Path,
        label: u32,
        bucket_bytes: usize,
        base_seq: u64,
        durability: Durability,
    ) -> Result<Self, OramError> {
        let path = wal_file_path(dir, label);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("creating WAL", &path, e))?;
        let mut wal = Self {
            file,
            path,
            end: 0,
            base_seq,
            last_seq: base_seq,
            bucket_bytes,
            durability,
            unsynced: 0,
            scratch: Vec::new(),
            crash_budget: None,
        };
        wal.write_header(base_seq)?;
        Ok(wal)
    }

    /// Sequence number of the last appended record (== the base when the
    /// log is empty).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The sequence number the current log generation starts after.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_header(&mut self, base_seq: u64) -> Result<(), OramError> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&WAL_MAGIC);
        self.scratch.extend_from_slice(&base_seq.to_le_bytes());
        self.scratch
            .extend_from_slice(&(self.bucket_bytes as u64).to_le_bytes());
        let checksum = crc64(&self.scratch).to_le_bytes();
        self.scratch.extend_from_slice(&checksum);
        self.file
            .write_all_at(&self.scratch, 0)
            .map_err(|e| io_err("writing WAL header to", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("syncing WAL", &self.path, e))?;
        self.end = HEADER_LEN as u64;
        Ok(())
    }

    /// Appends one path-writeback record (`images` is
    /// `indices.len() * bucket_bytes` long) and applies the fsync
    /// discipline.  Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure or an injected crash.
    pub fn append(&mut self, indices: &[u64], images: &[u8]) -> Result<u64, OramError> {
        debug_assert_eq!(images.len(), indices.len() * self.bucket_bytes);
        assert!(
            indices.len() <= MAX_RECORD_BUCKETS,
            "path longer than the WAL record bound"
        );
        let seq = self.last_seq + 1;
        let body_len = 12 + indices.len() * (8 + self.bucket_bytes);
        self.scratch.clear();
        self.scratch.extend_from_slice(&REC_MAGIC);
        self.scratch
            .extend_from_slice(&(body_len as u32).to_le_bytes());
        self.scratch.extend_from_slice(&seq.to_le_bytes());
        self.scratch
            .extend_from_slice(&(indices.len() as u32).to_le_bytes());
        for &index in indices {
            self.scratch.extend_from_slice(&index.to_le_bytes());
        }
        self.scratch.extend_from_slice(images);
        let checksum = crc64(&self.scratch).to_le_bytes();
        self.scratch.extend_from_slice(&checksum);

        if let Some(budget) = self.crash_budget.as_mut() {
            if (self.scratch.len() as u64) > *budget {
                // Simulated kill mid-append: the budgeted prefix reaches
                // the file (a torn record), the rest — and the tree write
                // that would have followed — never happens.
                let keep = usize::try_from(*budget).unwrap_or(usize::MAX);
                *budget = 0;
                if let Some(partial) = self.scratch.get(..keep) {
                    let _ = self.file.write_all_at(partial, self.end);
                    let _ = self.file.sync_data();
                }
                return Err(OramError::Storage {
                    detail: format!(
                        "injected crash after {keep} bytes of WAL record {seq} @ {}",
                        self.path.display()
                    ),
                });
            }
            *budget -= self.scratch.len() as u64;
        }

        self.file
            .write_all_at(&self.scratch, self.end)
            .map_err(|e| io_err("appending WAL record to", &self.path, e))?;
        self.end += self.scratch.len() as u64;
        self.last_seq = seq;
        match self.durability {
            Durability::Strict => {
                self.file
                    .sync_data()
                    .map_err(|e| io_err("syncing WAL", &self.path, e))?;
            }
            Durability::Batch(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.file
                        .sync_data()
                        .map_err(|e| io_err("syncing WAL", &self.path, e))?;
                    self.unsynced = 0;
                }
            }
            Durability::None => {}
        }
        Ok(seq)
    }

    /// Truncates the log back to a bare header after a checkpoint:
    /// everything up to `base_seq` now lives in the tree + metadata
    /// snapshot, so the records are dead weight.  A crash inside this
    /// method leaves an empty or torn-header log, which recovery treats as
    /// "no tail" — correct, because the checkpoint that just completed
    /// covers every applied record.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn truncate_to(&mut self, base_seq: u64) -> Result<(), OramError> {
        self.file
            .set_len(0)
            .map_err(|e| io_err("truncating WAL", &self.path, e))?;
        self.base_seq = base_seq;
        self.last_seq = base_seq;
        self.unsynced = 0;
        self.write_header(base_seq)
    }

    /// Forces the log to disk regardless of discipline.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), OramError> {
        self.unsynced = 0;
        self.file
            .sync_data()
            .map_err(|e| io_err("syncing WAL", &self.path, e))
    }

    /// Fault-injection hook for the kill-point recovery suite: permit at
    /// most `bytes` further WAL bytes, then fail appends with a torn
    /// record.  Not part of the public contract.
    #[doc(hidden)]
    pub fn set_crash_after_bytes(&mut self, bytes: u64) {
        self.crash_budget = Some(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oram-wal-test-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const BB: usize = 16;

    #[test]
    fn crc64_matches_the_xz_check_vector() {
        // The standard CRC-64/XZ check value for the ASCII digits 1-9.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_sliced_agrees_with_byte_at_a_time() {
        fn crc64_bytewise(bytes: &[u8]) -> u64 {
            let mut crc = !0u64;
            for &b in bytes {
                crc = CRC64_TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
            }
            !crc
        }
        // Lengths straddling the 8-byte slicing boundary and a record-sized
        // buffer, with non-trivial content.
        for len in [1usize, 7, 8, 9, 15, 16, 17, 255, 256, 4096, 6999] {
            let data: Vec<u8> = (0..len)
                .map(|i| (i.wrapping_mul(131) % 251) as u8)
                .collect();
            assert_eq!(crc64(&data), crc64_bytewise(&data), "length {len}");
        }
    }

    fn record(i: u64) -> (Vec<u64>, Vec<u8>) {
        let indices = vec![i, i + 10, i + 20];
        let images = (0..3 * BB).map(|b| (b as u64 + i) as u8).collect();
        (indices, images)
    }

    type SeenRecord = (u64, Vec<u64>, Vec<u8>);

    fn collect_replay(dir: &Path) -> (ReplaySummary, Vec<SeenRecord>) {
        let mut seen = Vec::new();
        let summary = replay(&wal_file_path(dir, 0), BB, |seq, idx, img| {
            seen.push((seq, idx.to_vec(), img.to_vec()));
            Ok(())
        })
        .unwrap()
        .unwrap();
        (summary, seen)
    }

    #[test]
    fn append_replay_roundtrip_preserves_records_and_order() {
        let dir = temp_dir("roundtrip");
        let mut wal = Wal::create(&dir, 0, BB, 7, Durability::Strict).unwrap();
        for i in 0..5u64 {
            let (idx, img) = record(i);
            assert_eq!(wal.append(&idx, &img).unwrap(), 8 + i);
        }
        drop(wal);
        let (summary, seen) = collect_replay(&dir);
        assert!(summary.header_valid && !summary.torn_tail);
        assert_eq!(
            (summary.base_seq, summary.last_seq, summary.records),
            (7, 12, 5)
        );
        for (i, (seq, idx, img)) in seen.iter().enumerate() {
            let (want_idx, want_img) = record(i as u64);
            assert_eq!((*seq, idx, img), (8 + i as u64, &want_idx, &want_img));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_wal_replays_as_none() {
        let dir = temp_dir("missing");
        assert_eq!(
            replay(&wal_file_path(&dir, 0), BB, |_, _, _| Ok(())).unwrap(),
            None
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_valid_prefix() {
        let dir = temp_dir("trunc");
        let mut wal = Wal::create(&dir, 0, BB, 0, Durability::Strict).unwrap();
        let mut boundaries = vec![std::fs::metadata(wal.path()).unwrap().len()];
        for i in 0..4u64 {
            let (idx, img) = record(i);
            wal.append(&idx, &img).unwrap();
            boundaries.push(std::fs::metadata(wal.path()).unwrap().len());
        }
        let path = wal.path().to_path_buf();
        drop(wal);
        let pristine = std::fs::read(&path).unwrap();
        for len in 0..=pristine.len() {
            std::fs::write(&path, &pristine[..len]).unwrap();
            let (summary, seen) = collect_replay(&dir);
            // The number of complete records this truncation preserves.
            let complete = boundaries
                .iter()
                .filter(|&&b| b <= len as u64)
                .count()
                .saturating_sub(1);
            if (len as u64) < boundaries[0] {
                assert!(!summary.header_valid, "len {len}");
            } else {
                assert!(summary.header_valid, "len {len}");
                assert_eq!(summary.records as usize, complete, "len {len}");
                assert_eq!(
                    summary.torn_tail,
                    len as u64 != boundaries[complete],
                    "len {len}"
                );
            }
            assert_eq!(seen.len(), if summary.header_valid { complete } else { 0 });
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupting_any_record_byte_ends_history_there() {
        let dir = temp_dir("flip");
        let mut wal = Wal::create(&dir, 0, BB, 0, Durability::Strict).unwrap();
        let mut boundaries = vec![std::fs::metadata(wal.path()).unwrap().len()];
        for i in 0..3u64 {
            let (idx, img) = record(i);
            wal.append(&idx, &img).unwrap();
            boundaries.push(std::fs::metadata(wal.path()).unwrap().len());
        }
        let path = wal.path().to_path_buf();
        drop(wal);
        let pristine = std::fs::read(&path).unwrap();
        // Flip one byte inside record 1 (the second record): records 0..=0
        // survive, the rest are gone.
        for pos in [boundaries[1], boundaries[1] + 9, boundaries[2] - 1] {
            let mut corrupt = pristine.clone();
            corrupt[pos as usize] ^= 0x40;
            std::fs::write(&path, &corrupt).unwrap();
            let (summary, seen) = collect_replay(&dir);
            assert!(summary.header_valid && summary.torn_tail, "pos {pos}");
            assert_eq!(summary.records, 1, "pos {pos}");
            assert_eq!(seen.len(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_to_starts_a_new_generation() {
        let dir = temp_dir("gen");
        let mut wal = Wal::create(&dir, 0, BB, 0, Durability::Batch(2)).unwrap();
        for i in 0..3u64 {
            let (idx, img) = record(i);
            wal.append(&idx, &img).unwrap();
        }
        wal.truncate_to(3).unwrap();
        let (idx, img) = record(9);
        assert_eq!(wal.append(&idx, &img).unwrap(), 4);
        drop(wal);
        let (summary, seen) = collect_replay(&dir);
        assert_eq!(
            (summary.base_seq, summary.last_seq, summary.records),
            (3, 4, 1)
        );
        assert_eq!(seen[0].0, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_crash_leaves_a_torn_record_and_fails_the_append() {
        let dir = temp_dir("crash");
        let mut wal = Wal::create(&dir, 0, BB, 0, Durability::Strict).unwrap();
        let (idx, img) = record(0);
        wal.append(&idx, &img).unwrap();
        wal.set_crash_after_bytes(10);
        let (idx2, img2) = record(1);
        assert!(matches!(
            wal.append(&idx2, &img2),
            Err(OramError::Storage { .. })
        ));
        // Further appends stay dead (budget exhausted).
        assert!(wal.append(&idx2, &img2).is_err());
        drop(wal);
        let (summary, seen) = collect_replay(&dir);
        assert!(summary.torn_tail);
        assert_eq!(summary.records, 1);
        assert_eq!(seen.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geometry_mismatch_treats_the_log_as_torn() {
        let dir = temp_dir("geom");
        let mut wal = Wal::create(&dir, 0, BB, 0, Durability::Strict).unwrap();
        let (idx, img) = record(0);
        wal.append(&idx, &img).unwrap();
        drop(wal);
        let summary = replay(&wal_file_path(&dir, 0), BB * 2, |_, _, _| Ok(()))
            .unwrap()
            .unwrap();
        assert!(!summary.header_valid);
        assert_eq!(summary.records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_env_and_codec_roundtrip() {
        for d in [Durability::None, Durability::Batch(64), Durability::Strict] {
            let mut buf = Vec::new();
            d.save(&mut buf);
            let mut r = crate::snapshot::SnapReader::new(&buf);
            assert_eq!(Durability::load(&mut r).unwrap(), d);
            r.finish().unwrap();
        }
        assert_eq!(format!("{}", Durability::Batch(8)), "batch:8");
        assert!(!Durability::None.is_logged());
        assert!(Durability::Strict.is_logged());
    }

    #[test]
    fn durability_parse_accepts_every_documented_selector() {
        assert_eq!(Durability::parse("").unwrap(), Durability::None);
        assert_eq!(Durability::parse("  none ").unwrap(), Durability::None);
        assert_eq!(Durability::parse("NONE").unwrap(), Durability::None);
        assert_eq!(Durability::parse("strict").unwrap(), Durability::Strict);
        assert_eq!(Durability::parse("STRICT").unwrap(), Durability::Strict);
        assert_eq!(Durability::parse("batch:1").unwrap(), Durability::Batch(1));
        assert_eq!(
            Durability::parse("batch:64").unwrap(),
            Durability::Batch(64)
        );
        assert_eq!(
            Durability::parse("Batch: 8 ").unwrap(),
            Durability::Batch(8)
        );
    }

    #[test]
    fn durability_parse_rejects_typos_instead_of_silently_unprotecting() {
        // The silent-fallback shape this regression test pins down: every
        // one of these used to resolve to `Durability::None`, running the
        // operator's workload without the WAL they asked for.
        for typo in [
            "stric",      // the classic one-character slip
            "strictt",    // trailing garbage
            "batch",      // missing interval separator
            "batch:",     // missing interval
            "batch:abc",  // non-numeric interval
            "batch:0",    // an fsync-every-0-records log is meaningless
            "batch:-1",   // negative interval
            "batch:1e3",  // no float/scientific intervals
            "everything", // plain nonsense
            "böse",       // non-ASCII must error, not panic on slicing
        ] {
            let err = Durability::parse(typo).unwrap_err();
            assert!(
                matches!(err, OramError::Storage { .. }),
                "{typo:?} -> {err:?}"
            );
            assert!(err.to_string().contains("ORAM_DURABILITY"), "{typo:?}");
        }
    }
}
