//! The Path ORAM backend: path read, stash maintenance, and greedy eviction.

use crate::bucket::Bucket;
use crate::encryption::{BucketCipher, EncryptionMode};
use crate::error::OramError;
use crate::params::OramParams;
use crate::stash::Stash;
use crate::stats::BackendStats;
use crate::storage::TreeStorage;
use crate::tree::{block_can_reside, path_linear_indices};
use crate::types::{AccessOp, BlockData, BlockId, Leaf, OramBlock};
use std::collections::HashSet;

/// The interface the Freecursive frontends program against (the paper's
/// `Backend(a, l, l′, op, d′)`, §3.1).
///
/// This is the crate's substrate seam: the frontends in `freecursive` are
/// generic over it, so the Path ORAM machinery can be swapped for another
/// position-based backend (or for [`crate::InsecureBackend`] in functional
/// tests) without touching frontend code.  Implementations intended for
/// deployment must satisfy Property 1 of §6.5.2: an access reveals only the
/// leaf supplied by the frontend and a fixed amount of (encrypted) data
/// written back.
pub trait OramBackend {
    /// Builds a backend for the given geometry.
    ///
    /// `encryption`, `key` and `seed` configure the bucket cipher and any
    /// randomised initialisation; backends without encrypted storage are free
    /// to ignore them.
    ///
    /// # Errors
    ///
    /// Returns an error if the backend cannot be constructed for `params`.
    fn new_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
    ) -> Result<Self, OramError>
    where
        Self: Sized;

    /// The tree geometry this backend serves.
    fn params(&self) -> &OramParams;

    /// Performs one backend access.
    ///
    /// * `Read` — fetch the block mapped to `leaf`, remap it to `new_leaf`,
    ///   and return its data.
    /// * `Write` — fetch the block, overwrite its contents with `data`, remap
    ///   to `new_leaf`; returns `None`.
    /// * `ReadRmv` — fetch the block and remove it from the ORAM entirely,
    ///   returning its data (`new_leaf` is ignored).
    /// * `Append` — insert `data` as a new block mapped to `new_leaf`
    ///   without touching the tree (`leaf` is ignored); returns `None`.
    ///
    /// Blocks that have never been written are implicitly created filled with
    /// zero bytes, which mirrors how a secure processor would see untouched
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns an error on stash overflow, malformed buckets (tampering),
    /// leaf out of range, size-mismatched write data, or appending a block
    /// that is already resident.
    fn access(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        data: Option<&[u8]>,
    ) -> Result<Option<BlockData>, OramError>;

    /// Accumulated backend statistics.
    fn stats(&self) -> &BackendStats;

    /// Resets the statistics counters (storage contents are retained).
    fn reset_stats(&mut self);
}

/// The functional Path ORAM backend.
///
/// Holds the encrypted tree in a [`TreeStorage`], a bounded [`Stash`], and a
/// [`BucketCipher`].  See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct PathOramBackend {
    params: OramParams,
    storage: TreeStorage,
    cipher: BucketCipher,
    stash: Stash,
    stats: BackendStats,
    /// Addresses of blocks currently stored in the ORAM (stash or tree);
    /// used to detect duplicate appends and to implement implicit
    /// zero-initialisation.
    resident: HashSet<BlockId>,
}

impl PathOramBackend {
    /// Creates a backend with an empty (lazily initialised) tree.
    ///
    /// `_seed` keeps the constructor signature stable for deterministic test
    /// harnesses that may later want seeded randomised initialisation.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` to keep the signature
    /// stable as initialisation strategies grow.
    pub fn new(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        _seed: u64,
    ) -> Result<Self, OramError> {
        let storage = TreeStorage::new(&params);
        let cipher = BucketCipher::new(encryption, key);
        let stash = Stash::new(params.stash_capacity);
        Ok(Self {
            params,
            storage,
            cipher,
            stash,
            stats: BackendStats::default(),
            resident: HashSet::new(),
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// Resets statistics (tree contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }

    /// The untrusted storage (adversary's view), immutable.
    pub fn storage(&self) -> &TreeStorage {
        &self.storage
    }

    /// The untrusted storage, mutable — this is the active adversary's
    /// tampering handle (§2).
    pub fn storage_mut(&mut self) -> &mut TreeStorage {
        &mut self.storage
    }

    /// Current stash occupancy (diagnostics).
    pub fn stash_occupancy(&self) -> usize {
        self.stash.len()
    }

    /// Whether a block address is currently stored (stash or tree).
    pub fn is_resident(&self, addr: BlockId) -> bool {
        self.resident.contains(&addr)
    }

    /// Whether a block currently sits in the on-chip stash (as opposed to the
    /// untrusted tree).  Diagnostic/test helper: lets adversarial tests check
    /// whether a block is actually exposed to tampering.
    pub fn stash_contains(&self, addr: BlockId) -> bool {
        self.stash.contains(addr)
    }

    /// Number of blocks currently stored.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    fn read_path_into_stash(&mut self, path: &[u64]) -> Result<(), OramError> {
        for &bucket_idx in path {
            self.stats.bytes_read += self.params.bucket_bytes() as u64;
            if !self.storage.is_initialized(bucket_idx) {
                continue;
            }
            let mut image = self.storage.read_bucket(bucket_idx).to_vec();
            self.cipher.open(bucket_idx, &mut image);
            let bucket = Bucket::deserialize(&image, &self.params, bucket_idx)?;
            for block in bucket.blocks {
                self.stats.real_blocks_fetched += 1;
                self.stash.insert(block);
            }
        }
        Ok(())
    }

    fn evict_path(&mut self, leaf: Leaf, path: &[u64]) {
        let leaf_level = self.params.leaf_level();
        for (level, &bucket_idx) in path.iter().enumerate().rev() {
            let level = level as u32;
            let taken = self.stash.take_matching(self.params.z, |_, block_leaf| {
                block_can_reside(block_leaf, leaf, level, leaf_level)
            });
            let mut bucket = Bucket::empty(&self.params);
            // Preserve the old seed so the per-bucket-seed discipline can
            // increment it (§6.4); for a never-written bucket it starts at 0.
            if self.storage.is_initialized(bucket_idx) {
                let raw = self.storage.read_bucket(bucket_idx);
                bucket.seed = u64::from_le_bytes(raw[..8].try_into().expect("seed header"));
            }
            self.stats.blocks_evicted += taken.len() as u64;
            self.stats.dummies_written += (self.params.z - taken.len()) as u64;
            for block in taken {
                bucket.push(block);
            }
            let mut image = bucket.serialize(&self.params);
            self.cipher.seal(bucket_idx, &mut image);
            self.storage.write_bucket(bucket_idx, image);
            self.stats.bytes_written += self.params.bucket_bytes() as u64;
        }
    }
}

impl OramBackend for PathOramBackend {
    fn new_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
    ) -> Result<Self, OramError> {
        Self::new(params, encryption, key, seed)
    }

    fn params(&self) -> &OramParams {
        &self.params
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }

    fn access(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        data: Option<&[u8]>,
    ) -> Result<Option<BlockData>, OramError> {
        if let Some(d) = data {
            if d.len() != self.params.block_bytes {
                return Err(OramError::BlockSizeMismatch {
                    expected: self.params.block_bytes,
                    actual: d.len(),
                });
            }
        }

        if op == AccessOp::Append {
            if self.resident.contains(&addr) {
                return Err(OramError::DuplicateAppend { addr });
            }
            if new_leaf >= self.params.num_leaves() {
                return Err(OramError::LeafOutOfRange {
                    leaf: new_leaf,
                    num_leaves: self.params.num_leaves(),
                });
            }
            let payload = data.ok_or(OramError::MissingWriteData)?.to_vec();
            self.stash.insert(OramBlock {
                addr,
                leaf: new_leaf,
                data: payload,
            });
            self.resident.insert(addr);
            self.stats.appends += 1;
            self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(self.stash.len());
            self.stash.check_overflow()?;
            return Ok(None);
        }

        if leaf >= self.params.num_leaves() {
            return Err(OramError::LeafOutOfRange {
                leaf,
                num_leaves: self.params.num_leaves(),
            });
        }
        if op != AccessOp::ReadRmv && new_leaf >= self.params.num_leaves() {
            return Err(OramError::LeafOutOfRange {
                leaf: new_leaf,
                num_leaves: self.params.num_leaves(),
            });
        }

        let path = path_linear_indices(leaf, self.params.leaf_level());
        self.read_path_into_stash(&path)?;

        let was_resident = self.resident.contains(&addr);
        if was_resident && !self.stash.contains(addr) {
            // The block should have been on this path or in the stash; the
            // frontend's leaf was wrong or memory was tampered with.
            return Err(OramError::BlockNotFound { addr });
        }
        if !was_resident {
            // Implicit zero-initialisation of never-written blocks.
            self.stash.insert(OramBlock {
                addr,
                leaf: new_leaf.min(self.params.num_leaves() - 1),
                data: vec![0u8; self.params.block_bytes],
            });
            self.resident.insert(addr);
        }

        let result = match op {
            AccessOp::Read => {
                let out = self.stash.data_of(addr).expect("block present");
                self.stash.remap(addr, new_leaf);
                Some(out)
            }
            AccessOp::Write => {
                let payload = data.ok_or(OramError::MissingWriteData)?.to_vec();
                self.stash.update_data(addr, payload);
                self.stash.remap(addr, new_leaf);
                None
            }
            AccessOp::ReadRmv => {
                let block = self.stash.remove(addr).expect("block present");
                self.resident.remove(&addr);
                Some(block.data)
            }
            AccessOp::Append => unreachable!("handled above"),
        };

        self.evict_path(leaf, &path);
        self.stats.path_accesses += 1;
        self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(self.stash.len());
        self.stash.check_overflow()?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn backend(n: u64, block: usize) -> PathOramBackend {
        PathOramBackend::new(
            OramParams::new(n, block, 4),
            EncryptionMode::GlobalSeed,
            [7u8; 16],
            0,
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_returns_data() {
        let mut b = backend(256, 32);
        let data = vec![0x5A; 32];
        b.access(AccessOp::Write, 10, 3, 8, Some(&data)).unwrap();
        let out = b.access(AccessOp::Read, 10, 8, 2, None).unwrap().unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        let mut b = backend(256, 32);
        let out = b.access(AccessOp::Read, 99, 0, 1, None).unwrap().unwrap();
        assert_eq!(out, vec![0u8; 32]);
    }

    #[test]
    fn readrmv_removes_and_append_restores() {
        let mut b = backend(256, 32);
        let data = vec![9u8; 32];
        b.access(AccessOp::Write, 7, 1, 5, Some(&data)).unwrap();
        let out = b.access(AccessOp::ReadRmv, 7, 5, 0, None).unwrap().unwrap();
        assert_eq!(out, data);
        assert!(!b.is_resident(7));
        // Appending it back at a new leaf makes it readable again.
        b.access(AccessOp::Append, 7, 0, 12, Some(&out)).unwrap();
        let again = b.access(AccessOp::Read, 7, 12, 3, None).unwrap().unwrap();
        assert_eq!(again, data);
    }

    #[test]
    fn duplicate_append_is_rejected() {
        let mut b = backend(256, 32);
        let data = vec![1u8; 32];
        b.access(AccessOp::Append, 3, 0, 4, Some(&data)).unwrap();
        assert_eq!(
            b.access(AccessOp::Append, 3, 0, 4, Some(&data)),
            Err(OramError::DuplicateAppend { addr: 3 })
        );
    }

    #[test]
    fn wrong_leaf_is_detected_as_block_not_found() {
        let mut b = backend(256, 32);
        let data = vec![2u8; 32];
        b.access(AccessOp::Write, 5, 0, 6, Some(&data)).unwrap();
        // Block 5 now lives on path 6; asking for it on a path that shares
        // only the root with both path 0 and path 6 must fail, because the
        // block was evicted below the root along path 0.
        let wrong_leaf = 6 ^ (b.params().num_leaves() / 2);
        let err = b.access(AccessOp::Read, 5, wrong_leaf, 1, None);
        assert_eq!(err, Err(OramError::BlockNotFound { addr: 5 }));
    }

    #[test]
    fn leaf_out_of_range_is_rejected() {
        let mut b = backend(256, 32);
        let leaves = b.params().num_leaves();
        assert!(matches!(
            b.access(AccessOp::Read, 0, leaves, 0, None),
            Err(OramError::LeafOutOfRange { .. })
        ));
        assert!(matches!(
            b.access(AccessOp::Read, 0, 0, leaves, None),
            Err(OramError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn write_data_size_is_validated() {
        let mut b = backend(256, 32);
        assert_eq!(
            b.access(AccessOp::Write, 0, 0, 0, Some(&[1u8; 31])),
            Err(OramError::BlockSizeMismatch {
                expected: 32,
                actual: 31
            })
        );
        assert_eq!(
            b.access(AccessOp::Write, 0, 0, 0, None),
            Err(OramError::MissingWriteData)
        );
    }

    #[test]
    fn random_workload_preserves_contents_and_bounded_stash() {
        // A frontend-like driver: we keep our own position map and verify the
        // Path ORAM invariant end-to-end over thousands of random accesses.
        let n: u64 = 512;
        let block = 16usize;
        let mut b = backend(n, block);
        let leaves = b.params().num_leaves();
        let mut rng = StdRng::seed_from_u64(42);
        let mut posmap: Vec<u64> = (0..n).map(|_| rng.gen_range(0..leaves)).collect();
        let mut reference: Vec<Option<Vec<u8>>> = vec![None; n as usize];

        for i in 0..4000u64 {
            let addr = rng.gen_range(0..n);
            let new_leaf = rng.gen_range(0..leaves);
            let old_leaf = posmap[addr as usize];
            posmap[addr as usize] = new_leaf;
            if rng.gen_bool(0.5) {
                let mut data = vec![0u8; block];
                rng.fill(&mut data[..]);
                data[0] = i as u8;
                b.access(AccessOp::Write, addr, old_leaf, new_leaf, Some(&data))
                    .unwrap();
                reference[addr as usize] = Some(data);
            } else {
                let out = b
                    .access(AccessOp::Read, addr, old_leaf, new_leaf, None)
                    .unwrap()
                    .unwrap();
                match &reference[addr as usize] {
                    Some(expected) => assert_eq!(&out, expected, "access {i}"),
                    None => assert_eq!(out, vec![0u8; block], "access {i}"),
                }
            }
        }
        assert!(
            b.stats().max_stash_occupancy <= b.params().stash_capacity,
            "stash stayed bounded"
        );
        assert_eq!(b.stats().path_accesses, 4000);
        // Every access moved exactly one path in each direction.
        assert_eq!(b.stats().bytes_read, 4000 * b.params().path_bytes());
        assert_eq!(b.stats().bytes_written, b.stats().bytes_read);
    }

    #[test]
    fn tampering_with_a_bucket_is_detected_or_corrupts_only_that_path() {
        // Without PMMAC the backend cannot always detect tampering, but
        // garbled buckets must at worst produce MalformedBucket or garbage
        // data, never a panic.
        let mut b = backend(256, 32);
        let data = vec![3u8; 32];
        b.access(AccessOp::Write, 1, 0, 1, Some(&data)).unwrap();
        // Corrupt every initialised bucket.
        for idx in 0..b.storage().num_buckets() as u64 {
            if b.storage().is_initialized(idx) {
                b.storage_mut().tamper_xor(idx, 20, 0xFF);
            }
        }
        let result = b.access(AccessOp::Read, 1, 1, 2, None);
        match result {
            Ok(_)
            | Err(OramError::MalformedBucket { .. })
            | Err(OramError::BlockNotFound { .. }) => {}
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn stats_track_appends_separately() {
        let mut b = backend(256, 32);
        b.access(AccessOp::Append, 1, 0, 1, Some(&[0u8; 32]))
            .unwrap();
        assert_eq!(b.stats().appends, 1);
        assert_eq!(b.stats().path_accesses, 0);
        assert_eq!(b.stats().bytes_read, 0);
    }
}
