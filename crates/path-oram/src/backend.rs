//! The Path ORAM backend: path read, stash maintenance, and greedy eviction.
//!
//! The access loop is engineered to be **allocation-free in steady state**:
//! the path's bucket indices, the decrypted path image, the eviction
//! classifier's worklists and the result payload all live in scratch buffers
//! owned by the backend (or passed in by the caller) and are reused across
//! accesses.  See `tests/backend_zero_alloc.rs` at the workspace root for
//! the allocator-counter proof.

use crate::bucket::{BucketView, BucketWriter};
use crate::encryption::{BucketCipher, EncryptionMode};
use crate::error::OramError;
use crate::params::OramParams;
use crate::snapshot::{self, SnapReader};
use crate::stash::{BlockIdBuildHasher, Stash};
use crate::stats::BackendStats;
use crate::storage::{StorageKind, TreeStorage, TreeStore};
use crate::tree::{deepest_common_level, path_linear_indices_into};
use crate::types::{AccessOp, BlockData, BlockId, Leaf};
use crate::wal::{Durability, MAX_RECORD_BUCKETS};
use oram_crypto::ctr::KeystreamSpan;
use std::collections::HashSet;
use std::path::Path;

/// The interface the Freecursive frontends program against (the paper's
/// `Backend(a, l, l′, op, d′)`, §3.1).
///
/// This is the crate's substrate seam: the frontends in `freecursive` are
/// generic over it, so the Path ORAM machinery can be swapped for another
/// position-based backend (or for [`crate::InsecureBackend`] in functional
/// tests) without touching frontend code.  Implementations intended for
/// deployment must satisfy Property 1 of §6.5.2: an access reveals only the
/// leaf supplied by the frontend and a fixed amount of (encrypted) data
/// written back.
///
/// `Send` is a supertrait: backends move into per-shard worker threads in a
/// sharded deployment, so every implementation must be transferable across
/// threads (all in-tree backends are — they hold only owned buffers).
pub trait OramBackend: Send {
    /// Builds a backend for the given geometry.
    ///
    /// `encryption`, `key` and `seed` configure the bucket cipher and any
    /// randomised initialisation; backends without encrypted storage are free
    /// to ignore them.
    ///
    /// # Errors
    ///
    /// Returns an error if the backend cannot be constructed for `params`.
    fn new_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
    ) -> Result<Self, OramError>
    where
        Self: Sized;

    /// Builds a backend whose tree lives in the given [`StorageKind`],
    /// under the given [`Durability`] discipline (file-backed stores keep a
    /// write-ahead log for anything but [`Durability::None`]).  `label`
    /// distinguishes several trees sharing one storage directory (the
    /// recursive frontend passes its level index).
    ///
    /// The default ignores the hints and delegates to
    /// [`OramBackend::new_backend`] — correct for backends without
    /// untrusted tree storage (the flat insecure baseline keeps its map in
    /// RAM regardless); backends that *do* own a tree override this.
    ///
    /// # Errors
    ///
    /// As for [`OramBackend::new_backend`], plus storage I/O failures.
    #[allow(clippy::too_many_arguments)]
    fn new_backend_with(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
        storage: &StorageKind,
        durability: Durability,
        label: u32,
    ) -> Result<Self, OramError>
    where
        Self: Sized,
    {
        let _ = (storage, durability, label);
        Self::new_backend(params, encryption, key, seed)
    }

    /// Serialises the backend's controller-side state (stash, residency,
    /// cipher counters, statistics — everything *except* the tree, which
    /// [`OramBackend::persist_tree`] handles) into `out`.  The bytes are
    /// embedded in the frontend's snapshot state file, which is
    /// digest-sealed as a whole.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] from the default: the backend does not
    /// support persistence.
    fn save_state(&self, out: &mut Vec<u8>) -> Result<(), OramError> {
        let _ = out;
        Err(OramError::Snapshot {
            detail: "this backend does not support persistence".into(),
        })
    }

    /// Writes the backend's tree into `dir` (see
    /// [`crate::TreeStore::persist_to`]).  Backends without an external
    /// tree may implement this as a no-op.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] from the default: the backend does not
    /// support persistence.
    fn persist_tree(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        let _ = (dir, label);
        Err(OramError::Snapshot {
            detail: "this backend does not support persistence".into(),
        })
    }

    /// Rebuilds a backend from a snapshot: the tree files under `dir`
    /// (opened according to `storage`) plus the controller-side `state`
    /// bytes previously produced by [`OramBackend::save_state`].
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] from the default: the backend does not
    /// support persistence.
    #[allow(clippy::too_many_arguments)]
    fn resume_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
        storage: &StorageKind,
        durability: Durability,
        dir: &Path,
        label: u32,
        state: &[u8],
    ) -> Result<Self, OramError>
    where
        Self: Sized,
    {
        let _ = (
            params, encryption, key, seed, storage, durability, dir, label, state,
        );
        Err(OramError::Snapshot {
            detail: "this backend does not support persistence".into(),
        })
    }

    /// The tree geometry this backend serves.
    fn params(&self) -> &OramParams;

    /// Performs one backend access, writing any returned payload into `out`
    /// (cleared first; its capacity is reused across calls, which is the
    /// frontends' allocation-free read path).  Returns `true` when `out`
    /// carries data.
    ///
    /// * `Read` — fetch the block mapped to `leaf`, remap it to `new_leaf`,
    ///   and return its data.
    /// * `Write` — fetch the block, overwrite its contents with `data`, remap
    ///   to `new_leaf`; returns no data.
    /// * `ReadRmv` — fetch the block and remove it from the ORAM entirely,
    ///   returning its data (`new_leaf` is ignored).
    /// * `Append` — insert `data` as a new block mapped to `new_leaf`
    ///   without touching the tree (`leaf` is ignored); returns no data.
    ///
    /// Blocks that have never been written are implicitly created filled with
    /// zero bytes, which mirrors how a secure processor would see untouched
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns an error on stash overflow, malformed buckets (tampering),
    /// leaf out of range, size-mismatched write data, or appending a block
    /// that is already resident.
    fn access_into(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        data: Option<&[u8]>,
        out: &mut Vec<u8>,
    ) -> Result<bool, OramError>;

    /// Owned-payload convenience wrapper over [`OramBackend::access_into`]
    /// (allocates the returned payload; hot paths should prefer
    /// `access_into` with a reused buffer).
    ///
    /// # Errors
    ///
    /// As for [`OramBackend::access_into`].
    fn access(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        data: Option<&[u8]>,
    ) -> Result<Option<BlockData>, OramError> {
        let mut out = Vec::new();
        let has_data = self.access_into(op, addr, leaf, new_leaf, data, &mut out)?;
        Ok(has_data.then_some(out))
    }

    /// Opens a batched-access window: until [`OramBackend::end_batch`], the
    /// backend may defer and coalesce tree I/O across accesses — notably by
    /// keeping the top tree levels (shared by every path in the batch) in a
    /// controller-side cache that is read once and written back once per
    /// batch instead of once per access.
    ///
    /// The scheduling is semantically invisible: every access inside the
    /// window returns byte-identical results to the same accesses issued
    /// unbatched, and after `end_batch` the untrusted tree holds the same
    /// blocks in the same buckets.  Only the I/O and sealing *schedule*
    /// changes — which is fine obliviousness-wise, because the set of
    /// touched paths (the only thing the schedule reveals) is exactly the
    /// per-access leak the paper already concedes (§3.1, Property 1).
    ///
    /// Contract: windows must be bracketed (`begin_batch` … accesses …
    /// `end_batch`) with no snapshot/persist call in between; `end_batch`
    /// must be called even when an access inside the window fails.  The
    /// default is a no-op for backends with nothing to coalesce.
    fn begin_batch(&mut self) {}

    /// Closes the batched-access window opened by
    /// [`OramBackend::begin_batch`], sealing and writing back any deferred
    /// state.  No-op when no window is open (so it is always safe to call).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] if the deferred writeback fails.
    fn end_batch(&mut self) -> Result<(), OramError> {
        Ok(())
    }

    /// Accumulated backend statistics.
    fn stats(&self) -> &BackendStats;

    /// Resets the statistics counters (storage contents are retained).
    fn reset_stats(&mut self);
}

/// The functional Path ORAM backend.
///
/// Holds the encrypted tree in a [`TreeStorage`] (the in-memory arena by
/// default, or the file-backed store via
/// [`PathOramBackend::new_with_storage`]), a bounded slab [`Stash`], a
/// [`BucketCipher`], and the reusable scratch buffers of the hot path.  See
/// the crate-level example for usage.
#[derive(Debug)]
pub struct PathOramBackend {
    params: OramParams,
    storage: TreeStorage,
    cipher: BucketCipher,
    stash: Stash,
    stats: BackendStats,
    /// Addresses of blocks currently stored in the ORAM (stash or tree);
    /// used to detect duplicate appends and to implement implicit
    /// zero-initialisation.
    resident: HashSet<BlockId, BlockIdBuildHasher>,
    /// Scratch: linear bucket indices of the path being processed.
    path_idx: Vec<u64>,
    /// Scratch: the decrypted plaintext path, one bucket image per level.
    path_buf: Vec<u8>,
    /// Scratch: real blocks found on the path that are *not* the block of
    /// interest.  They bypass the stash entirely — classified straight out
    /// of `path_buf` and written back from there — so the stash only ever
    /// holds the block of interest, appends, and eviction leftovers.
    path_blocks: Vec<PathBlockRef>,
    /// Scratch: eviction classifier worklists, one per tree level — list `d`
    /// holds the eviction candidates whose deepest legal level on the
    /// current path is `d`.  Entries tag [`PATH_ENTRY_BIT`] to distinguish
    /// `path_blocks` indices from stash slots.
    evict_depth: Vec<Vec<u32>>,
    /// Scratch: classifier entries still eligible as the eviction walks from
    /// the leaf towards the root.
    evict_carry: Vec<u32>,
    /// Scratch: keystream spans covering the path's buckets, so the whole
    /// path is decrypted (and re-encrypted) in **one batched engine pass per
    /// direction** instead of one cipher call per bucket.
    cipher_spans: Vec<KeystreamSpan>,
    /// Scratch: the eviction staging image for non-arena stores — buckets
    /// are serialised and sealed here, then handed to the store as one
    /// batched path write.  (The arena store skips this buffer entirely and
    /// writes in place; eviction reads payloads out of `path_buf`, so the
    /// staging area must be a separate allocation.)
    write_buf: Vec<u8>,
    /// Whether a batched-access window is open (see
    /// [`OramBackend::begin_batch`]).  Only ever true over non-arena
    /// stores: the arena is already RAM-resident, so there is no I/O to
    /// coalesce, and its zero-copy fast path writes sealed buckets straight
    /// into untrusted memory — deferral would park plaintext there.
    batch_active: bool,
    /// Number of top tree levels covered by the batch cache,
    /// `min(levels, MAX_BATCH_CACHE_LEVELS)`.
    batch_cache_levels: u32,
    /// `2^batch_cache_levels - 1`: buckets with a linear index below this
    /// have a batch-cache slot.
    batch_cache_buckets: u64,
    /// The batch dedup cache: plaintext images of the top tree levels,
    /// bucket `i` at `[i * bucket_bytes, (i+1) * bucket_bytes)`.  During a
    /// window, evictions install these levels here (once per bucket, not
    /// once per path) and reads are served from it; `end_batch` seals the
    /// whole cache in one engine pass and flushes it in WAL-logged chunks.
    batch_cache: Vec<u8>,
    /// One bit per batch-cache bucket: set when the cache holds a deferred
    /// image newer than the store (reads of set buckets must not touch the
    /// store — its image is stale).  Only evictions set bits, so
    /// present == dirty.
    batch_present: Vec<u64>,
    /// Scratch: bucket indices of the flush chunk being assembled.
    flush_idx: Vec<u64>,
    /// Scratch: packed images of the flush chunk (present cache buckets are
    /// sparse, `TreeStore::write_path` wants them contiguous).
    flush_buf: Vec<u8>,
}

/// Depth of the batch dedup cache: covering 8 levels (255 buckets, ~80 KiB
/// at the paper's 320-byte buckets) captures the bulk of the cross-path
/// sharing — level ℓ has `2^ℓ` buckets, so collisions above level 8 are
/// negligible for realistic batch sizes — while keeping the controller-side
/// footprint fixed and small.
const MAX_BATCH_CACHE_LEVELS: u32 = 8;

/// High bit of an eviction-classifier entry: set for `path_blocks` indices,
/// clear for stash slab slots.
const PATH_ENTRY_BIT: u32 = 1 << 31;

/// A real block sitting in the decrypted path scratch buffer.
#[derive(Debug, Clone, Copy)]
struct PathBlockRef {
    addr: BlockId,
    leaf: Leaf,
    /// Byte offset of the block's payload within `path_buf`.
    offset: u32,
}

/// Routes one parsed bucket's real blocks during the path read: the block
/// of interest goes into the stash, every other block becomes a
/// [`PathBlockRef`] classified into the eviction worklists.  When `scratch`
/// is given (plaintext mode, where the view aliases the arena) the payloads
/// are copied into it at their canonical path offsets; otherwise the view
/// already reads from the scratch.  Free function over the individual
/// fields so the caller can hold the bucket image borrowed from either the
/// arena or the scratch.
#[allow(clippy::too_many_arguments)]
// lint: ct-scope, no-alloc
fn classify_bucket(
    view: BucketView<'_>,
    of_interest: BlockId,
    path_leaf: Leaf,
    bucket_base: usize,
    params: &OramParams,
    mut scratch: Option<&mut [u8]>,
    stash: &mut Stash,
    path_blocks: &mut Vec<PathBlockRef>,
    evict_depth: &mut [Vec<u32>],
    stats: &mut BackendStats,
) {
    let data_base = params.bucket_data_base();
    for slot in view.occupied() {
        stats.real_blocks_fetched += 1;
        // lint: allow(secret-branch, on-chip destination select between stash and writeback scratch; both arms touch the slot and the external trace is unchanged)
        if slot.addr == of_interest {
            stash.insert_from_parts(slot.addr, slot.leaf, slot.data);
            continue;
        }
        let offset = bucket_base + data_base + slot.slot * params.block_bytes;
        if let Some(buf) = scratch.as_deref_mut() {
            buf[offset..offset + params.block_bytes].copy_from_slice(slot.data);
        }
        let entry = path_blocks.len() as u32 | PATH_ENTRY_BIT;
        // lint: allow(no-alloc, pre-reserved to levels*z at construction; steady state never grows)
        path_blocks.push(PathBlockRef {
            addr: slot.addr,
            leaf: slot.leaf,
            offset: offset as u32,
        });
        let depth = deepest_common_level(slot.leaf, path_leaf, params.leaf_level());
        // lint: allow(no-alloc, classifier lists pre-reserved to the worst-case candidate bound)
        evict_depth[depth as usize].push(entry);
    }
}
// lint: end

/// Serialises one eviction bucket into `image`: takes up to `take` entries
/// from the carry list (path blocks read out of `path_buf`, stash blocks
/// out of their slots, which are released), stamps `seed`, and zeroes the
/// dummy slots via `finish`.  Free function over the individual fields so
/// the caller can hold `image` borrowed from either the arena or the
/// staging buffer.
#[allow(clippy::too_many_arguments)]
// lint: ct-scope, no-alloc
fn fill_bucket(
    image: &mut [u8],
    params: &OramParams,
    seed: u64,
    take: usize,
    evict_carry: &[u32],
    carry_pos: &mut usize,
    path_blocks: &[PathBlockRef],
    path_buf: &[u8],
    stash: &mut Stash,
) {
    let block_bytes = params.block_bytes;
    let mut writer = BucketWriter::begin(image, params, seed);
    for _ in 0..take {
        let entry = evict_carry[*carry_pos];
        *carry_pos += 1;
        if entry & PATH_ENTRY_BIT != 0 {
            let path_block = path_blocks[(entry & !PATH_ENTRY_BIT) as usize];
            let offset = path_block.offset as usize;
            // lint: allow(no-alloc, BucketWriter::push serialises into the caller's fixed bucket image; no heap)
            writer.push(
                path_block.addr,
                path_block.leaf,
                &path_buf[offset..offset + block_bytes],
            );
        } else {
            let (addr, block_leaf, data) = stash.slot_payload(entry);
            // lint: allow(no-alloc, BucketWriter::push serialises into the caller's fixed bucket image; no heap)
            writer.push(addr, block_leaf, data);
            stash.release_slot(entry);
        }
    }
    writer.finish();
}
// lint: end

impl PathOramBackend {
    /// Creates a backend with an empty (lazily initialised) tree.
    ///
    /// `_seed` keeps the constructor signature stable for deterministic test
    /// harnesses that may later want seeded randomised initialisation.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` to keep the signature
    /// stable as initialisation strategies grow.
    pub fn new(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        _seed: u64,
    ) -> Result<Self, OramError> {
        Ok(Self::from_parts(
            params,
            encryption,
            key,
            TreeStorage::new(&params),
        ))
    }

    /// Creates a backend over a freshly created store of the given kind
    /// (the [`crate::TreeStore`] seam's front door; `label` distinguishes
    /// trees sharing a storage directory).  `durability` selects the
    /// write-ahead-log discipline for file-backed stores (see
    /// [`crate::wal`]); memory stores ignore it.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] if file-backed storage cannot be created.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_storage(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        _seed: u64,
        storage: &StorageKind,
        durability: Durability,
        label: u32,
    ) -> Result<Self, OramError> {
        let storage = TreeStorage::create(&params, storage, label, durability)?;
        Ok(Self::from_parts(params, encryption, key, storage))
    }

    fn from_parts(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        storage: TreeStorage,
    ) -> Self {
        let cipher = BucketCipher::new(encryption, key);
        let levels = params.levels() as usize;
        // Transient headroom: a full path of real blocks plus the implicit
        // zero-initialised block of the access in flight.
        let stash = Stash::new(
            params.stash_capacity,
            params.block_bytes,
            levels * params.z + 1,
        );
        // Worst-case eviction candidates in one pass: the whole stash plus
        // every real block on the path.  Pre-reserving the classifier lists
        // at that bound keeps the steady state free of reallocations.
        let max_candidates = params.stash_capacity + levels * params.z + 1;
        // The staging buffer is only exercised by non-arena stores, but
        // allocating it unconditionally keeps construction uniform (one
        // path image, ~the size of `path_buf`).
        let write_buf = vec![0u8; levels * params.bucket_bytes()];
        // The batch cache and its flush scratch are, like `write_buf`, only
        // exercised by non-arena stores, but allocated unconditionally so
        // construction stays uniform and the steady state allocation-free.
        let batch_cache_levels = params.levels().min(MAX_BATCH_CACHE_LEVELS);
        let batch_cache_buckets = (1u64 << batch_cache_levels) - 1;
        Self {
            params,
            storage,
            cipher,
            stash,
            stats: BackendStats::default(),
            resident: HashSet::default(),
            path_idx: Vec::with_capacity(levels),
            path_buf: vec![0u8; levels * params.bucket_bytes()],
            path_blocks: Vec::with_capacity(levels * params.z),
            evict_depth: (0..levels)
                .map(|_| Vec::with_capacity(max_candidates))
                .collect(),
            evict_carry: Vec::with_capacity(max_candidates),
            cipher_spans: Vec::with_capacity(levels.max(batch_cache_buckets as usize)),
            write_buf,
            batch_active: false,
            batch_cache_levels,
            batch_cache_buckets,
            batch_cache: vec![0u8; batch_cache_buckets as usize * params.bucket_bytes()],
            batch_present: vec![0u64; (batch_cache_buckets as usize).div_ceil(64)],
            flush_idx: Vec::with_capacity(MAX_RECORD_BUCKETS),
            flush_buf: vec![
                0u8;
                MAX_RECORD_BUCKETS.min(batch_cache_buckets as usize)
                    * params.bucket_bytes()
            ],
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// Resets statistics (tree contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }

    /// The untrusted storage (adversary's view), immutable.
    pub fn storage(&self) -> &TreeStorage {
        &self.storage
    }

    /// The untrusted storage, mutable — this is the active adversary's
    /// tampering handle (§2).
    pub fn storage_mut(&mut self) -> &mut TreeStorage {
        &mut self.storage
    }

    /// Current stash occupancy (diagnostics).
    pub fn stash_occupancy(&self) -> usize {
        self.stash.len()
    }

    /// Whether a block address is currently stored (stash or tree).
    pub fn is_resident(&self, addr: BlockId) -> bool {
        self.resident.contains(&addr)
    }

    /// Whether a block currently sits in the on-chip stash (as opposed to the
    /// untrusted tree).  Diagnostic/test helper: lets adversarial tests check
    /// whether a block is actually exposed to tampering.
    pub fn stash_contains(&self, addr: BlockId) -> bool {
        self.stash.contains(addr)
    }

    /// Number of blocks currently stored.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    /// Slab slot capacity of the stash (diagnostics for the
    /// capacity-stability tests).
    pub fn stash_slot_capacity(&self) -> usize {
        self.stash.slot_capacity()
    }

    /// Serialises the controller-side state: cipher counter, residency set,
    /// the stash (exact slot layout included, so a resumed instance evicts
    /// identically), statistics, and the WAL sequence barrier — the
    /// writeback sequence number the tree stood at when this state was
    /// captured.  The tree itself is persisted separately by
    /// [`PathOramBackend::persist_tree_to`].
    pub fn save_controller_state(&self, out: &mut Vec<u8>) {
        snapshot::put_u64(out, self.cipher.global_seed());
        let mut resident: Vec<BlockId> = self.resident.iter().copied().collect();
        resident.sort_unstable();
        snapshot::put_u64(out, resident.len() as u64);
        for addr in resident {
            snapshot::put_u64(out, addr);
        }
        self.stash.save(out);
        self.stats.save(out);
        snapshot::put_u64(out, self.storage.wal_seq());
    }

    /// Restores the state written by
    /// [`PathOramBackend::save_controller_state`].
    ///
    /// The trailing barrier is checked against the (possibly WAL-recovered)
    /// store: controller state — stash, residency, cipher counter — is a
    /// point-in-time capture, so resuming it against a tree that has
    /// advanced past (or fallen behind) that point would silently
    /// desynchronise the two.  WAL recovery makes this *detectable*: the
    /// store knows exactly which writeback its contents cover.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] on truncation, geometry mismatch, or a
    /// barrier mismatch (the tree does not match the controller snapshot).
    fn load_controller_state(&mut self, state: &[u8]) -> Result<(), OramError> {
        let mut r = SnapReader::new(state);
        self.cipher.set_global_seed(r.u64()?);
        let resident_count = r.len(r.remaining() / 8)?;
        self.resident.clear();
        self.resident.reserve(resident_count);
        for _ in 0..resident_count {
            self.resident.insert(r.u64()?);
        }
        self.stash.load(&mut r)?;
        self.stats = BackendStats::load(&mut r)?;
        let barrier = r.u64()?;
        r.finish()?;
        let store_seq = self.storage.wal_seq();
        if store_seq != barrier {
            return Err(OramError::Snapshot {
                detail: format!(
                    "tree/controller snapshot mismatch: the recovered tree covers \
                     writeback {store_seq}, but the controller state was captured at \
                     writeback {barrier}; resume from a snapshot whose persist() \
                     completed, or rebuild the instance"
                ),
            });
        }
        Ok(())
    }

    /// Persists the tree into `dir` (see [`crate::TreeStore::persist_to`]).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn persist_tree_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        self.storage.persist_to(dir, label)
    }

    // lint: ct-scope, no-alloc
    #[inline]
    fn is_batch_present(&self, index: u64) -> bool {
        self.batch_present[(index / 64) as usize] & (1 << (index % 64)) != 0
    }

    #[inline]
    fn set_batch_present(&mut self, index: u64) {
        self.batch_present[(index / 64) as usize] |= 1 << (index % 64);
    }

    /// Byte range of bucket `index`'s slot in the batch cache.
    #[inline]
    fn cache_range(&self, index: u64) -> std::ops::Range<usize> {
        let start = index as usize * self.params.bucket_bytes();
        start..start + self.params.bucket_bytes()
    }

    /// Whether a bucket holds a parseable image: either the store
    /// initialised it, or a batch window deferred a newer image into the
    /// cache (whose store-side image, if any, is stale).  Reduces to plain
    /// store initialisation outside a window — the present bitmap is only
    /// ever set while one is open.
    #[inline]
    fn bucket_valid(&self, index: u64) -> bool {
        (self.batch_active && index < self.batch_cache_buckets && self.is_batch_present(index))
            || self.storage.is_initialized(index)
    }
    // lint: end

    /// Reads the path's buckets: each initialised bucket is decrypted into
    /// the path scratch buffer (or, when the mode is plaintext, parsed
    /// straight out of the arena) and its real blocks classified for the
    /// upcoming eviction in the same pass.  The block of interest (`addr`)
    /// is copied into the stash; every other real block only gets a
    /// [`PathBlockRef`] into the scratch plus a classifier entry — it is
    /// written back straight from there.  No per-bucket or per-block
    /// allocation, and dummy-slot payloads are never copied.
    // lint: ct-scope, no-alloc
    fn read_path(&mut self, addr: BlockId, leaf: Leaf) -> Result<(), OramError> {
        let bucket_bytes = self.params.bucket_bytes();
        let plaintext = self.cipher.mode() == EncryptionMode::None;
        self.path_blocks.clear();
        for list in &mut self.evict_depth {
            list.clear();
        }

        // Zero-copy fast path for the in-memory arena: plaintext buckets
        // are parsed straight out of the arena, encrypted ones are copied
        // once into the scratch.  Byte-for-byte the pre-seam hot path.
        if let Some(mem) = self.storage.as_mem() {
            if plaintext {
                for (level, &bucket_idx) in self.path_idx.iter().enumerate() {
                    self.stats.bytes_read += bucket_bytes as u64;
                    if !mem.is_initialized(bucket_idx) {
                        continue;
                    }
                    // The arena already holds the plaintext: parse it in
                    // place and copy only the real payloads into the scratch
                    // (eviction rewrites the arena slots before it consumes
                    // the scratch, so sources must not alias them).  Dummy
                    // slots are never copied.
                    let bucket_base = level * bucket_bytes;
                    let view =
                        BucketView::parse(mem.read_bucket(bucket_idx), &self.params, bucket_idx)?;
                    classify_bucket(
                        view,
                        addr,
                        leaf,
                        bucket_base,
                        &self.params,
                        Some(&mut self.path_buf[..]),
                        &mut self.stash,
                        &mut self.path_blocks,
                        &mut self.evict_depth,
                        &mut self.stats,
                    );
                }
                return Ok(());
            }

            // Encrypted arena: copy every initialised bucket into the path
            // scratch and queue its keystream span (seed read from the
            // plaintext header), pay the whole path's decryption in one
            // batched engine pass, then parse and classify below.
            self.cipher_spans.clear();
            for (level, &bucket_idx) in self.path_idx.iter().enumerate() {
                self.stats.bytes_read += bucket_bytes as u64;
                if !mem.is_initialized(bucket_idx) {
                    continue;
                }
                let bucket_base = level * bucket_bytes;
                let scratch = &mut self.path_buf[bucket_base..bucket_base + bucket_bytes];
                scratch.copy_from_slice(mem.read_bucket(bucket_idx));
                let seed = u64::from_le_bytes(scratch[..8].try_into().expect("seed header"));
                self.cipher.push_span(
                    &mut self.cipher_spans,
                    bucket_idx,
                    seed,
                    bucket_base,
                    &self.params,
                );
                self.stats.buckets_decrypted += 1;
            }
        } else {
            // Generic store (file-backed): the path's deep suffix lands in
            // the scratch with one batched span read — the file store
            // coalesces it into at most ⌈levels/k⌉ contiguous subtree
            // extents — then decrypts in the same single engine pass as
            // the arena path.  Plaintext mode simply skips the spans.
            //
            // Inside a batch window the top `batch_cache_levels` are served
            // from the dedup cache instead: a bucket a previous access in
            // the window already wrote is copied out of the cache (already
            // plaintext — no store read, no span), so each shared upper
            // bucket costs one store read and one seal per *batch* rather
            // than one per *path*.  Outside a window `split` is 0 and this
            // is exactly the old single-read code.
            let split = if self.batch_active {
                (self.batch_cache_levels as usize).min(self.path_idx.len())
            } else {
                0
            };
            self.cipher_spans.clear();
            for level in 0..split {
                let bucket_idx = self.path_idx[level];
                self.stats.bytes_read += bucket_bytes as u64;
                let bucket_base = level * bucket_bytes;
                if self.is_batch_present(bucket_idx) {
                    let range = self.cache_range(bucket_idx);
                    self.path_buf[bucket_base..bucket_base + bucket_bytes]
                        .copy_from_slice(&self.batch_cache[range]);
                    continue;
                }
                if !self.storage.is_initialized(bucket_idx) {
                    continue;
                }
                self.storage.read_bucket_into(
                    bucket_idx,
                    &mut self.path_buf[bucket_base..bucket_base + bucket_bytes],
                )?;
                if !plaintext {
                    let seed = u64::from_le_bytes(
                        self.path_buf[bucket_base..bucket_base + 8]
                            .try_into()
                            .expect("seed header"),
                    );
                    self.cipher.push_span(
                        &mut self.cipher_spans,
                        bucket_idx,
                        seed,
                        bucket_base,
                        &self.params,
                    );
                    self.stats.buckets_decrypted += 1;
                }
            }
            if split < self.path_idx.len() {
                self.storage.read_path_into(
                    &self.path_idx[split..],
                    &mut self.path_buf[split * bucket_bytes..],
                )?;
            }
            for (level, &bucket_idx) in self.path_idx.iter().enumerate().skip(split) {
                self.stats.bytes_read += bucket_bytes as u64;
                if !self.storage.is_initialized(bucket_idx) {
                    continue;
                }
                if !plaintext {
                    let bucket_base = level * bucket_bytes;
                    let seed = u64::from_le_bytes(
                        self.path_buf[bucket_base..bucket_base + 8]
                            .try_into()
                            .expect("seed header"),
                    );
                    self.cipher.push_span(
                        &mut self.cipher_spans,
                        bucket_idx,
                        seed,
                        bucket_base,
                        &self.params,
                    );
                    self.stats.buckets_decrypted += 1;
                }
            }
        }

        self.cipher
            .apply_spans(&self.cipher_spans, &mut self.path_buf);
        for (level, &bucket_idx) in self.path_idx.iter().enumerate() {
            if !self.bucket_valid(bucket_idx) {
                continue;
            }
            let bucket_base = level * bucket_bytes;
            let image = &self.path_buf[bucket_base..bucket_base + bucket_bytes];
            let view = BucketView::parse(image, &self.params, bucket_idx)?;
            classify_bucket(
                view,
                addr,
                leaf,
                bucket_base,
                &self.params,
                None,
                &mut self.stash,
                &mut self.path_blocks,
                &mut self.evict_depth,
                &mut self.stats,
            );
        }
        Ok(())
    }
    // lint: end

    /// Writes the path back: the candidates were already classified by the
    /// deepest level they may legally occupy on the current path — path
    /// blocks during [`PathOramBackend::read_path`], stash slots in one
    /// O(stash) pass here — then buckets are filled deepest-first and
    /// serialised/sealed directly into their arena slots.  Path blocks that
    /// find no room (possible once the accessed block stole a slot) are
    /// spilled into the stash at the end.
    // lint: ct-scope, no-alloc
    fn evict_path(&mut self, leaf: Leaf) -> Result<(), OramError> {
        let leaf_level = self.params.leaf_level();
        let block_bytes = self.params.block_bytes;
        let bucket_bytes = self.params.bucket_bytes();

        // Stash blocks join the path blocks classified during the read
        // (the stash mutated since then: the access inserted, remapped or
        // removed the block of interest, so it classifies here).
        for (slot, _, block_leaf) in self.stash.occupied_slots() {
            let depth = deepest_common_level(block_leaf, leaf, leaf_level);
            // lint: allow(no-alloc, classifier lists pre-reserved to the worst-case candidate bound)
            self.evict_depth[depth as usize].push(slot);
        }

        // Deepest-first fills: walking the path leaf → root, candidates that
        // became eligible at a deeper level but found no room remain
        // eligible at every shallower level, so they carry over.
        self.evict_carry.clear();
        self.cipher_spans.clear();
        let mut carry_pos = 0usize;

        if let Some(mem) = self.storage.as_mem_mut() {
            // Arena fast path: buckets are serialised (with the write-back
            // seed already stamped) straight into their arena slots; the
            // spans queued here are paid off by one batched sealing pass
            // over the arena after the walk.
            for level in (0..=leaf_level).rev() {
                let bucket_idx = self.path_idx[level as usize];
                self.evict_carry
                    // lint: allow(no-alloc, carry list pre-reserved to the stash-plus-path bound)
                    .extend(self.evict_depth[level as usize].iter().copied());
                let take = self.params.z.min(self.evict_carry.len() - carry_pos);

                // Preserve the old seed so the per-bucket-seed discipline
                // can increment it (§6.4); a never-written bucket starts
                // at 0.
                let old_seed = if mem.is_initialized(bucket_idx) {
                    u64::from_le_bytes(
                        mem.read_bucket(bucket_idx)[..8]
                            .try_into()
                            .expect("seed header"),
                    )
                } else {
                    0
                };
                let seed = self.cipher.writeback_seed(old_seed);

                fill_bucket(
                    mem.bucket_slot_mut(bucket_idx),
                    &self.params,
                    seed,
                    take,
                    &self.evict_carry,
                    &mut carry_pos,
                    &self.path_blocks,
                    &self.path_buf,
                    &mut self.stash,
                );
                self.cipher.push_span(
                    &mut self.cipher_spans,
                    bucket_idx,
                    seed,
                    mem.bucket_offset(bucket_idx),
                    &self.params,
                );
                if self.cipher.mode() != EncryptionMode::None {
                    self.stats.buckets_encrypted += 1;
                }

                self.stats.blocks_evicted += take as u64;
                self.stats.dummies_written += (self.params.z - take) as u64;
                self.stats.bytes_written += bucket_bytes as u64;
            }
            // One batched engine pass seals the whole written path.
            self.cipher.apply_spans(&self.cipher_spans, mem.arena_mut());
        } else {
            // Generic store: serialise the whole path into the staging
            // buffer, seal it in the same single batched engine pass, then
            // hand it to the store as one `write_path` call (positional
            // per-bucket writes underneath — see the trait docs for why
            // writes, unlike reads, cannot coalesce into extents).  The
            // old seeds come from the path scratch, whose headers were
            // copied verbatim during the read (the keystream spans exclude
            // them).
            //
            // Inside a batch window the top `batch_cache_levels` skip the
            // staging buffer: they are serialised (plaintext, new seed
            // already stamped in the header) straight into their dedup
            // cache slots, where later accesses in the window overwrite
            // them in place.  Only the final image per bucket is sealed
            // and written — once, at `end_batch` — so the shared upper
            // levels cost one store write per batch instead of one per
            // path.  Outside a window `split` is 0 and this is exactly
            // the old code.
            let split = if self.batch_active {
                self.batch_cache_levels as usize
            } else {
                0
            };
            for level in (0..=leaf_level).rev() {
                let bucket_idx = self.path_idx[level as usize];
                self.evict_carry
                    // lint: allow(no-alloc, carry list pre-reserved to the stash-plus-path bound)
                    .extend(self.evict_depth[level as usize].iter().copied());
                let take = self.params.z.min(self.evict_carry.len() - carry_pos);

                let bucket_base = level as usize * bucket_bytes;
                // The cache counts as a newer image than the store (see
                // `bucket_valid`): per-bucket seed chains must continue
                // from the deferred header, not restart from the store's
                // stale one.
                let old_seed = if self.bucket_valid(bucket_idx) {
                    u64::from_le_bytes(
                        self.path_buf[bucket_base..bucket_base + 8]
                            .try_into()
                            .expect("seed header"),
                    )
                } else {
                    0
                };
                let seed = self.cipher.writeback_seed(old_seed);

                if (level as usize) < split {
                    let range = self.cache_range(bucket_idx);
                    fill_bucket(
                        &mut self.batch_cache[range],
                        &self.params,
                        seed,
                        take,
                        &self.evict_carry,
                        &mut carry_pos,
                        &self.path_blocks,
                        &self.path_buf,
                        &mut self.stash,
                    );
                    self.set_batch_present(bucket_idx);
                    // Sealing is deferred to `end_batch`, which accounts
                    // the one real encryption pass per bucket.
                } else {
                    fill_bucket(
                        &mut self.write_buf[bucket_base..bucket_base + bucket_bytes],
                        &self.params,
                        seed,
                        take,
                        &self.evict_carry,
                        &mut carry_pos,
                        &self.path_blocks,
                        &self.path_buf,
                        &mut self.stash,
                    );
                    self.cipher.push_span(
                        &mut self.cipher_spans,
                        bucket_idx,
                        seed,
                        bucket_base,
                        &self.params,
                    );
                    if self.cipher.mode() != EncryptionMode::None {
                        self.stats.buckets_encrypted += 1;
                    }
                }

                self.stats.blocks_evicted += take as u64;
                self.stats.dummies_written += (self.params.z - take) as u64;
                self.stats.bytes_written += bucket_bytes as u64;
            }
            self.cipher
                .apply_spans(&self.cipher_spans, &mut self.write_buf);
            if split <= leaf_level as usize {
                self.storage.write_path(
                    &self.path_idx[split..],
                    &self.write_buf[split * bucket_bytes..],
                )?;
            }
        }

        // Spill unplaced path blocks into the stash; they join the next
        // eviction's candidates like any other stash block.
        while carry_pos < self.evict_carry.len() {
            let entry = self.evict_carry[carry_pos];
            carry_pos += 1;
            if entry & PATH_ENTRY_BIT != 0 {
                let path_block = self.path_blocks[(entry & !PATH_ENTRY_BIT) as usize];
                let offset = path_block.offset as usize;
                self.stash.insert_from_parts(
                    path_block.addr,
                    path_block.leaf,
                    &self.path_buf[offset..offset + block_bytes],
                );
            }
        }
        Ok(())
    }
    // lint: end
}

impl OramBackend for PathOramBackend {
    fn new_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
    ) -> Result<Self, OramError> {
        Self::new(params, encryption, key, seed)
    }

    fn new_backend_with(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        seed: u64,
        storage: &StorageKind,
        durability: Durability,
        label: u32,
    ) -> Result<Self, OramError> {
        Self::new_with_storage(params, encryption, key, seed, storage, durability, label)
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<(), OramError> {
        self.save_controller_state(out);
        Ok(())
    }

    fn persist_tree(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        self.persist_tree_to(dir, label)
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        _seed: u64,
        storage: &StorageKind,
        durability: Durability,
        dir: &Path,
        label: u32,
        state: &[u8],
    ) -> Result<Self, OramError> {
        let storage = TreeStorage::open_snapshot(&params, storage, dir, label, durability)?;
        let mut backend = Self::from_parts(params, encryption, key, storage);
        backend.load_controller_state(state)?;
        Ok(backend)
    }

    fn params(&self) -> &OramParams {
        &self.params
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }

    fn begin_batch(&mut self) {
        // Arena stores get nothing from batching — the tree is already
        // RAM-resident and served zero-copy — and their fast path writes
        // sealed buckets directly into untrusted memory, which deferral
        // would subvert.  Leave the window closed; every access then takes
        // the unbatched path unchanged.
        if self.storage.as_mem().is_some() {
            return;
        }
        self.batch_active = true;
        for word in &mut self.batch_present {
            *word = 0;
        }
    }

    // lint: no-alloc
    fn end_batch(&mut self) -> Result<(), OramError> {
        if !self.batch_active {
            return Ok(());
        }
        self.batch_active = false;
        let bucket_bytes = self.params.bucket_bytes();

        // Seal every deferred bucket in one batched engine pass: the seed
        // each image was built with sits in its plaintext header (stamped
        // by `fill_bucket`), and the spans exclude the header bytes.
        self.cipher_spans.clear();
        for index in 0..self.batch_cache_buckets {
            if !self.is_batch_present(index) {
                continue;
            }
            let base = index as usize * bucket_bytes;
            let seed = u64::from_le_bytes(
                self.batch_cache[base..base + 8]
                    .try_into()
                    .expect("seed header"),
            );
            self.cipher
                .push_span(&mut self.cipher_spans, index, seed, base, &self.params);
            if self.cipher.mode() != EncryptionMode::None {
                self.stats.buckets_encrypted += 1;
            }
        }
        self.cipher
            .apply_spans(&self.cipher_spans, &mut self.batch_cache);

        // Flush in ascending-index chunks through `write_path`, so every
        // chunk is WAL-logged before the tree is touched, exactly like an
        // ordinary eviction writeback: any durable mutation advances the
        // store's sequence number, which keeps the controller snapshot
        // barrier sound — a crash mid-flush recovers to a sequence number
        // no controller snapshot carries and is refused at resume.
        let mut index = 0u64;
        while index < self.batch_cache_buckets {
            self.flush_idx.clear();
            let mut fill = 0usize;
            while index < self.batch_cache_buckets && self.flush_idx.len() < MAX_RECORD_BUCKETS {
                if self.is_batch_present(index) {
                    // lint: allow(no-alloc, chunk list pre-reserved to the WAL record bound at construction)
                    self.flush_idx.push(index);
                    let base = index as usize * bucket_bytes;
                    self.flush_buf[fill..fill + bucket_bytes]
                        .copy_from_slice(&self.batch_cache[base..base + bucket_bytes]);
                    fill += bucket_bytes;
                }
                index += 1;
            }
            if self.flush_idx.is_empty() {
                break;
            }
            self.storage
                .write_path(&self.flush_idx, &self.flush_buf[..fill])?;
        }
        for word in &mut self.batch_present {
            *word = 0;
        }
        Ok(())
    }
    // lint: end

    // lint: ct-scope, no-alloc
    fn access_into(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        data: Option<&[u8]>,
        out: &mut Vec<u8>,
    ) -> Result<bool, OramError> {
        out.clear();
        if let Some(d) = data {
            if d.len() != self.params.block_bytes {
                return Err(OramError::BlockSizeMismatch {
                    expected: self.params.block_bytes,
                    actual: d.len(),
                });
            }
        }

        if op == AccessOp::Append {
            // lint: allow(secret-branch, duplicate-append guard; membership failure aborts with a visible error by contract)
            if self.resident.contains(&addr) {
                return Err(OramError::DuplicateAppend { addr });
            }
            // lint: allow(secret-branch, range validation of caller input; rejects malformed leaves before any memory touch)
            if new_leaf >= self.params.num_leaves() {
                return Err(OramError::LeafOutOfRange {
                    leaf: new_leaf,
                    num_leaves: self.params.num_leaves(),
                });
            }
            let payload = data.ok_or(OramError::MissingWriteData)?;
            self.stash.insert_from_parts(addr, new_leaf, payload);
            // lint: allow(no-alloc, residency set is controller-side metadata; amortised growth outside the proven zero-alloc window)
            self.resident.insert(addr);
            self.stats.appends += 1;
            self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(self.stash.len());
            self.stash.check_overflow()?;
            return Ok(false);
        }

        // lint: allow(secret-branch, range validation of caller input; rejects malformed leaves before any memory touch)
        if leaf >= self.params.num_leaves() {
            return Err(OramError::LeafOutOfRange {
                leaf,
                num_leaves: self.params.num_leaves(),
            });
        }
        // lint: allow(secret-branch, range validation of caller input; rejects malformed leaves before any memory touch)
        if op != AccessOp::ReadRmv && new_leaf >= self.params.num_leaves() {
            return Err(OramError::LeafOutOfRange {
                leaf: new_leaf,
                num_leaves: self.params.num_leaves(),
            });
        }

        let leaf_level = self.params.leaf_level();
        path_linear_indices_into(leaf, leaf_level, &mut self.path_idx);
        self.read_path(addr, leaf)?;

        let was_resident = self.resident.contains(&addr);
        // lint: allow(secret-branch, integrity check per section 6.5.2; failure means a wrong frontend leaf or tampering and aborts visibly)
        if was_resident && !self.stash.contains(addr) {
            // The block should have been on this path or in the stash; the
            // frontend's leaf was wrong or memory was tampered with.
            return Err(OramError::BlockNotFound { addr });
        }
        if !was_resident {
            // Implicit zero-initialisation of never-written blocks.
            // `new_leaf` is range-checked above for Read/Write; ReadRmv
            // ignores it by contract (the block is removed below before it
            // could ever be evicted), so the zero block is created on the
            // path just fetched rather than clamping a possibly-invalid
            // caller value into range.
            let assigned_leaf = if op == AccessOp::ReadRmv {
                leaf
            } else {
                new_leaf
            };
            self.stash.insert_zeroed(addr, assigned_leaf);
            // lint: allow(no-alloc, residency set is controller-side metadata; amortised growth outside the proven zero-alloc window)
            self.resident.insert(addr);
        }

        let has_data = match op {
            AccessOp::Read => {
                // lint: allow(no-alloc, grows the caller's buffer to block_bytes once; steady state reuses its capacity)
                out.extend_from_slice(self.stash.data_of(addr).expect("block present"));
                self.stash.remap(addr, new_leaf);
                true
            }
            AccessOp::Write => {
                let payload = data.ok_or(OramError::MissingWriteData)?;
                self.stash.update_data(addr, payload);
                self.stash.remap(addr, new_leaf);
                false
            }
            AccessOp::ReadRmv => {
                self.stash.remove_into(addr, out).expect("block present");
                self.resident.remove(&addr);
                true
            }
            AccessOp::Append => unreachable!("handled above"),
        };

        self.evict_path(leaf)?;
        self.stats.path_accesses += 1;
        self.stats.max_stash_occupancy = self.stats.max_stash_occupancy.max(self.stash.len());
        self.stash.check_overflow()?;
        Ok(has_data)
    }
    // lint: end
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn backend(n: u64, block: usize) -> PathOramBackend {
        PathOramBackend::new(
            OramParams::new(n, block, 4),
            EncryptionMode::GlobalSeed,
            [7u8; 16],
            0,
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_returns_data() {
        let mut b = backend(256, 32);
        let data = vec![0x5A; 32];
        b.access(AccessOp::Write, 10, 3, 8, Some(&data)).unwrap();
        let out = b.access(AccessOp::Read, 10, 8, 2, None).unwrap().unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        let mut b = backend(256, 32);
        let out = b.access(AccessOp::Read, 99, 0, 1, None).unwrap().unwrap();
        assert_eq!(out, vec![0u8; 32]);
    }

    #[test]
    fn readrmv_removes_and_append_restores() {
        let mut b = backend(256, 32);
        let data = vec![9u8; 32];
        b.access(AccessOp::Write, 7, 1, 5, Some(&data)).unwrap();
        let out = b.access(AccessOp::ReadRmv, 7, 5, 0, None).unwrap().unwrap();
        assert_eq!(out, data);
        assert!(!b.is_resident(7));
        // Appending it back at a new leaf makes it readable again.
        b.access(AccessOp::Append, 7, 0, 12, Some(&out)).unwrap();
        let again = b.access(AccessOp::Read, 7, 12, 3, None).unwrap().unwrap();
        assert_eq!(again, data);
    }

    #[test]
    fn readrmv_of_unwritten_block_ignores_new_leaf() {
        // ReadRmv's contract says `new_leaf` is ignored; an out-of-range
        // value must neither error nor corrupt state (the old code silently
        // clamped it instead).
        let mut b = backend(256, 32);
        let leaves = b.params().num_leaves();
        let out = b
            .access(AccessOp::ReadRmv, 42, 3, leaves + 1000, None)
            .unwrap()
            .unwrap();
        assert_eq!(out, vec![0u8; 32]);
        assert!(!b.is_resident(42));
        // The backend remains fully functional afterwards.
        b.access(AccessOp::Write, 1, 0, 2, Some(&[8u8; 32]))
            .unwrap();
        assert_eq!(
            b.access(AccessOp::Read, 1, 2, 0, None).unwrap().unwrap(),
            vec![8u8; 32]
        );
    }

    #[test]
    fn duplicate_append_is_rejected() {
        let mut b = backend(256, 32);
        let data = vec![1u8; 32];
        b.access(AccessOp::Append, 3, 0, 4, Some(&data)).unwrap();
        assert_eq!(
            b.access(AccessOp::Append, 3, 0, 4, Some(&data)),
            Err(OramError::DuplicateAppend { addr: 3 })
        );
    }

    #[test]
    fn wrong_leaf_is_detected_as_block_not_found() {
        let mut b = backend(256, 32);
        let data = vec![2u8; 32];
        b.access(AccessOp::Write, 5, 0, 6, Some(&data)).unwrap();
        // Block 5 now lives on path 6; asking for it on a path that shares
        // only the root with both path 0 and path 6 must fail, because the
        // block was evicted below the root along path 0.
        let wrong_leaf = 6 ^ (b.params().num_leaves() / 2);
        let err = b.access(AccessOp::Read, 5, wrong_leaf, 1, None);
        assert_eq!(err, Err(OramError::BlockNotFound { addr: 5 }));
    }

    #[test]
    fn leaf_out_of_range_is_rejected() {
        let mut b = backend(256, 32);
        let leaves = b.params().num_leaves();
        assert!(matches!(
            b.access(AccessOp::Read, 0, leaves, 0, None),
            Err(OramError::LeafOutOfRange { .. })
        ));
        assert!(matches!(
            b.access(AccessOp::Read, 0, 0, leaves, None),
            Err(OramError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn write_data_size_is_validated() {
        let mut b = backend(256, 32);
        assert_eq!(
            b.access(AccessOp::Write, 0, 0, 0, Some(&[1u8; 31])),
            Err(OramError::BlockSizeMismatch {
                expected: 32,
                actual: 31
            })
        );
        assert_eq!(
            b.access(AccessOp::Write, 0, 0, 0, None),
            Err(OramError::MissingWriteData)
        );
    }

    #[test]
    fn random_workload_preserves_contents_and_bounded_stash() {
        // A frontend-like driver: we keep our own position map and verify the
        // Path ORAM invariant end-to-end over thousands of random accesses.
        let n: u64 = 512;
        let block = 16usize;
        let mut b = backend(n, block);
        let leaves = b.params().num_leaves();
        let mut rng = StdRng::seed_from_u64(42);
        let mut posmap: Vec<u64> = (0..n).map(|_| rng.gen_range(0..leaves)).collect();
        let mut reference: Vec<Option<Vec<u8>>> = vec![None; n as usize];

        for i in 0..4000u64 {
            let addr = rng.gen_range(0..n);
            let new_leaf = rng.gen_range(0..leaves);
            let old_leaf = posmap[addr as usize];
            posmap[addr as usize] = new_leaf;
            if rng.gen_bool(0.5) {
                let mut data = vec![0u8; block];
                rng.fill(&mut data[..]);
                data[0] = i as u8;
                b.access(AccessOp::Write, addr, old_leaf, new_leaf, Some(&data))
                    .unwrap();
                reference[addr as usize] = Some(data);
            } else {
                let out = b
                    .access(AccessOp::Read, addr, old_leaf, new_leaf, None)
                    .unwrap()
                    .unwrap();
                match &reference[addr as usize] {
                    Some(expected) => assert_eq!(&out, expected, "access {i}"),
                    None => assert_eq!(out, vec![0u8; block], "access {i}"),
                }
            }
        }
        assert!(
            b.stats().max_stash_occupancy <= b.params().stash_capacity,
            "stash stayed bounded"
        );
        assert_eq!(b.stats().path_accesses, 4000);
        // Every access moved exactly one path in each direction.
        assert_eq!(b.stats().bytes_read, 4000 * b.params().path_bytes());
        assert_eq!(b.stats().bytes_written, b.stats().bytes_read);
        // Every initialised bucket on every path went through the cipher.
        assert!(b.stats().buckets_decrypted > 0);
        assert_eq!(
            b.stats().buckets_encrypted,
            4000 * u64::from(b.params().levels())
        );
    }

    #[test]
    fn tampering_with_a_bucket_is_detected_or_corrupts_only_that_path() {
        // Without PMMAC the backend cannot always detect tampering, but
        // garbled buckets must at worst produce MalformedBucket or garbage
        // data, never a panic.
        let mut b = backend(256, 32);
        let data = vec![3u8; 32];
        b.access(AccessOp::Write, 1, 0, 1, Some(&data)).unwrap();
        // Corrupt every initialised bucket.
        for idx in 0..b.storage().num_buckets() as u64 {
            if b.storage().is_initialized(idx) {
                b.storage_mut().tamper_xor(idx, 20, 0xFF);
            }
        }
        let result = b.access(AccessOp::Read, 1, 1, 2, None);
        match result {
            Ok(_)
            | Err(OramError::MalformedBucket { .. })
            | Err(OramError::BlockNotFound { .. }) => {}
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn tampered_leaf_field_is_rejected_not_panicking() {
        // Regression test: a corrupted slot leaf used to drive
        // `deepest_common_level` into a u32 underflow and an out-of-bounds
        // classifier index.  Plaintext mode makes the corruption byte-exact.
        let mut b = PathOramBackend::new(
            OramParams::new(256, 32, 4),
            EncryptionMode::None,
            [0u8; 16],
            0,
        )
        .unwrap();
        b.access(AccessOp::Write, 1, 0, 1, Some(&[3u8; 32]))
            .unwrap();
        // Flip the high byte of slot 0's leaf field in every initialised
        // bucket (offset 20 = 8B header + valid + 8B addr + 3).
        for idx in 0..b.storage().num_buckets() as u64 {
            if b.storage().is_initialized(idx) {
                b.storage_mut().tamper_xor(idx, 20, 0xFF);
            }
        }
        for leaf in 0..b.params().num_leaves() {
            match b.access(AccessOp::Read, 1, leaf, 0, None) {
                Ok(_)
                | Err(OramError::MalformedBucket { .. })
                | Err(OramError::BlockNotFound { .. }) => {}
                other => panic!("unexpected result {other:?}"),
            }
        }
    }

    #[test]
    fn stats_track_appends_separately() {
        let mut b = backend(256, 32);
        b.access(AccessOp::Append, 1, 0, 1, Some(&[0u8; 32]))
            .unwrap();
        assert_eq!(b.stats().appends, 1);
        assert_eq!(b.stats().path_accesses, 0);
        assert_eq!(b.stats().bytes_read, 0);
        assert_eq!(b.stats().buckets_encrypted, 0);
    }

    #[test]
    fn identical_histories_produce_identical_stats_and_storage() {
        // The indexed eviction is deterministic (unlike the previous
        // hash-map-ordered take), so two backends fed the same operations
        // agree byte-for-byte on stats and on every initialised bucket.
        let run = || {
            let mut b = backend(512, 16);
            let mut rng = StdRng::seed_from_u64(7);
            let leaves = b.params().num_leaves();
            let mut posmap: Vec<u64> = (0..512).map(|_| rng.gen_range(0..leaves)).collect();
            for _ in 0..1000 {
                let addr = rng.gen_range(0..512u64);
                let new_leaf = rng.gen_range(0..leaves);
                let old_leaf = posmap[addr as usize];
                posmap[addr as usize] = new_leaf;
                b.access(AccessOp::Write, addr, old_leaf, new_leaf, Some(&[1u8; 16]))
                    .unwrap();
            }
            b
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats(), b.stats());
        for idx in 0..a.storage().num_buckets() as u64 {
            assert_eq!(
                a.storage().snapshot_bucket(idx),
                b.storage().snapshot_bucket(idx),
                "bucket {idx}"
            );
        }
    }

    #[test]
    fn file_backed_backend_matches_the_arena_backend_byte_for_byte() {
        // The same seeded workload through both stores must produce
        // identical responses, stats, and — because eviction is
        // deterministic and the cipher state marches in lockstep —
        // identical bucket ciphertexts.
        let run = |kind: &StorageKind| {
            let params = OramParams::new(512, 16, 4);
            let mut b = PathOramBackend::new_with_storage(
                params,
                EncryptionMode::GlobalSeed,
                [7u8; 16],
                0,
                kind,
                Durability::None,
                0,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(99);
            let leaves = b.params().num_leaves();
            let mut posmap: Vec<u64> = (0..512).map(|_| rng.gen_range(0..leaves)).collect();
            let mut responses = Vec::new();
            for i in 0..600u64 {
                let addr = rng.gen_range(0..512u64);
                let new_leaf = rng.gen_range(0..leaves);
                let old_leaf = posmap[addr as usize];
                posmap[addr as usize] = new_leaf;
                if i % 2 == 0 {
                    responses.push(
                        b.access(AccessOp::Read, addr, old_leaf, new_leaf, None)
                            .unwrap(),
                    );
                } else {
                    b.access(
                        AccessOp::Write,
                        addr,
                        old_leaf,
                        new_leaf,
                        Some(&[i as u8; 16]),
                    )
                    .unwrap();
                }
            }
            responses
        };
        let mem = run(&StorageKind::Mem);
        let file = run(&StorageKind::TempFile);
        let tiered = run(&StorageKind::TempTiered {
            memory_budget: 16 << 10,
        });
        assert_eq!(mem, file);
        assert_eq!(mem, tiered);
    }

    #[test]
    fn batched_windows_match_unbatched_accesses_byte_for_byte() {
        // The same seeded workload, unbatched vs chopped into batch
        // windows of various sizes, over every store kind: responses must
        // match, and because the write-back seed sequence is identical
        // (deferral changes when buckets are *sealed*, not which seed each
        // eviction stamps), the final tree must be ciphertext-identical
        // too.
        let run = |kind: &StorageKind, window: usize| {
            let params = OramParams::new(512, 16, 4);
            let mut b = PathOramBackend::new_with_storage(
                params,
                EncryptionMode::GlobalSeed,
                [3u8; 16],
                0,
                kind,
                Durability::None,
                0,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(1234);
            let leaves = b.params().num_leaves();
            let mut posmap: Vec<u64> = (0..512).map(|_| rng.gen_range(0..leaves)).collect();
            let mut responses = Vec::new();
            let mut i = 0u64;
            while i < 500 {
                if window > 0 {
                    b.begin_batch();
                }
                for _ in 0..window.max(1) {
                    if i >= 500 {
                        break;
                    }
                    let addr = rng.gen_range(0..512u64);
                    let new_leaf = rng.gen_range(0..leaves);
                    let old_leaf = posmap[addr as usize];
                    posmap[addr as usize] = new_leaf;
                    if i.is_multiple_of(3) {
                        b.access(
                            AccessOp::Write,
                            addr,
                            old_leaf,
                            new_leaf,
                            Some(&[i as u8; 16]),
                        )
                        .unwrap();
                    } else {
                        responses.push(
                            b.access(AccessOp::Read, addr, old_leaf, new_leaf, None)
                                .unwrap(),
                        );
                    }
                    i += 1;
                }
                if window > 0 {
                    b.end_batch().unwrap();
                }
            }
            let snapshots: Vec<Vec<u8>> = (0..b.storage().num_buckets() as u64)
                .map(|idx| b.storage().snapshot_bucket(idx))
                .collect();
            (responses, snapshots)
        };
        let tiered_kind = StorageKind::TempTiered {
            memory_budget: 16 << 10,
        };
        let baseline = run(&StorageKind::TempFile, 0);
        for window in [1usize, 7, 16] {
            assert_eq!(
                run(&StorageKind::TempFile, window),
                baseline,
                "file w={window}"
            );
            assert_eq!(run(&tiered_kind, window), baseline, "tiered w={window}");
            assert_eq!(run(&StorageKind::Mem, window), baseline, "mem w={window}");
        }
    }

    #[test]
    fn backend_persist_resume_roundtrip_across_store_kinds() {
        let params = OramParams::new(256, 32, 4);
        let dir = std::env::temp_dir().join(format!(
            "oram-backend-snap-{}-{:x}",
            std::process::id(),
            &params as *const _ as usize
        ));
        for kind in [
            StorageKind::Mem,
            StorageKind::TempFile,
            StorageKind::TempTiered {
                memory_budget: 16 << 10,
            },
        ] {
            let mut b = PathOramBackend::new_with_storage(
                params,
                EncryptionMode::GlobalSeed,
                [9u8; 16],
                0,
                &kind,
                Durability::None,
                0,
            )
            .unwrap();
            let leaves = b.params().num_leaves();
            let mut rng = StdRng::seed_from_u64(5);
            let mut posmap: Vec<u64> = (0..256).map(|_| rng.gen_range(0..leaves)).collect();
            for i in 0..300u64 {
                let addr = rng.gen_range(0..256u64);
                let new_leaf = rng.gen_range(0..leaves);
                let old_leaf = posmap[addr as usize];
                posmap[addr as usize] = new_leaf;
                b.access(
                    AccessOp::Write,
                    addr,
                    old_leaf,
                    new_leaf,
                    Some(&[i as u8; 32]),
                )
                .unwrap();
            }
            let mut state = Vec::new();
            b.save_state(&mut state).unwrap();
            b.persist_tree(&dir, 0).unwrap();
            let stats_before = b.stats().clone();
            drop(b);

            // Resume under the *other* store kind: the snapshot format is
            // store-agnostic.
            let resume_kind = match kind {
                StorageKind::Mem => StorageKind::File { dir: dir.clone() },
                StorageKind::TempFile => StorageKind::Tiered {
                    dir: dir.clone(),
                    memory_budget: 16 << 10,
                },
                _ => StorageKind::Mem,
            };
            let mut resumed = PathOramBackend::resume_backend(
                params,
                EncryptionMode::GlobalSeed,
                [9u8; 16],
                0,
                &resume_kind,
                Durability::None,
                &dir,
                0,
                &state,
            )
            .unwrap();
            assert_eq!(resumed.stats(), &stats_before);
            // Every block reads back with the contents the pre-snapshot run
            // left behind.
            let mut rng2 = StdRng::seed_from_u64(17);
            for _ in 0..200 {
                let addr = rng2.gen_range(0..256u64);
                let old_leaf = posmap[addr as usize];
                let new_leaf = rng2.gen_range(0..leaves);
                posmap[addr as usize] = new_leaf;
                let out = resumed
                    .access(AccessOp::Read, addr, old_leaf, new_leaf, None)
                    .unwrap()
                    .unwrap();
                assert_eq!(out.len(), 32);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
