//! Buckets: fixed-size containers of Z block slots plus an encryption seed.
//!
//! Any slot may be empty at any time; empty slots are filled with dummy
//! blocks so that, after encryption, real and dummy blocks are
//! indistinguishable (§3.1).
//!
//! Two codecs share one layout:
//!
//! * the zero-copy codec — [`BucketView`] parses a plaintext image into
//!   borrowed slot views and [`BucketWriter`] serialises straight into a
//!   caller-provided image (an arena slot of [`crate::MemStore`], or the
//!   eviction staging buffer for file-backed stores) — is what the
//!   backend's hot path uses;
//! * the owned [`Bucket`] type remains for construction-time code and tests
//!   that want a materialised bucket.
//!
//! The codec produces and consumes **plaintext** images; encryption is a
//! separate, batchable XOR pass.  On the hot path the backend runs the codec
//! over every bucket of a path first — [`BucketWriter::begin`] stamps the
//! write-back seed chosen by
//! [`crate::encryption::BucketCipher::writeback_seed`], pushes the evicted
//! blocks, and [`BucketWriter::finish`] zeroes the dummy slots — and only
//! then seals *all* the finished images in a single batched keystream pass
//! ([`crate::encryption::BucketCipher::apply_spans`]); unsealing runs the
//! same pass before [`BucketView::parse`] sees any byte.  One engine call
//! per direction, instead of one cipher invocation per bucket.
//!
//! Layout: `[seed: 8B][slot 0 meta]…[slot Z-1 meta][slot 0 data]…[padding]`
//! where each slot meta is `[valid: 1B][addr: 8B][leaf: 4B]`.  The address
//! field is a full `u64` because unified `i‖a_i` addresses carry the
//! recursion-level tag in their high bits (bit 56 upward); an earlier 4-byte
//! encoding silently truncated those tags and corrupted the identity of any
//! PosMap block evicted into the tree.  Leaves are stored in 4 bytes, which
//! [`OramParams`] guarantees is wide enough (leaf level ≤ 32).

use crate::error::OramError;
use crate::params::{OramParams, BUCKET_HEADER_BYTES, SLOT_META_BYTES};
use crate::types::{BlockId, Leaf, OramBlock};
use serde::{Deserialize, Serialize};

/// One occupied slot parsed out of a bucket image, borrowing its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView<'a> {
    /// Slot index within the bucket (`0..Z`).
    pub slot: usize,
    /// Block address.
    pub addr: BlockId,
    /// Leaf the block is currently mapped to.
    pub leaf: Leaf,
    /// Block payload (exactly `block_bytes` long).
    pub data: &'a [u8],
}

/// A borrowed, validated view of a plaintext bucket image: the zero-copy
/// read codec.
#[derive(Debug, Clone, Copy)]
pub struct BucketView<'a> {
    bytes: &'a [u8],
    z: usize,
    block_bytes: usize,
}

// lint: ct-scope, no-alloc
impl<'a> BucketView<'a> {
    /// Validates and wraps a plaintext bucket image produced by
    /// [`BucketWriter`] / [`Bucket::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`OramError::MalformedBucket`] if the image has the wrong
    /// length, any slot's valid byte is neither 0 nor 1, or an occupied
    /// slot's leaf is outside `[0, 2^L)` — any of which can only happen if
    /// untrusted memory was tampered with and decryption produced garbage.
    /// The leaf check keeps downstream path arithmetic
    /// ([`crate::tree::deepest_common_level`] and friends) panic-free under
    /// an active adversary.
    pub fn parse(
        bytes: &'a [u8],
        params: &OramParams,
        bucket_index: u64,
    ) -> Result<Self, OramError> {
        if bytes.len() != params.bucket_bytes() {
            return Err(OramError::MalformedBucket {
                bucket: bucket_index,
            });
        }
        let num_leaves = params.num_leaves();
        for slot in 0..params.z {
            let m = BUCKET_HEADER_BYTES + slot * SLOT_META_BYTES;
            match bytes[m] {
                0 => {}
                1 => {
                    let leaf = u32::from_le_bytes(bytes[m + 9..m + 13].try_into().unwrap());
                    // lint: allow(secret-branch, tamper detection on an untrusted field; a forged bucket aborts the access visibly)
                    if u64::from(leaf) >= num_leaves {
                        return Err(OramError::MalformedBucket {
                            bucket: bucket_index,
                        });
                    }
                }
                _ => {
                    return Err(OramError::MalformedBucket {
                        bucket: bucket_index,
                    });
                }
            }
        }
        Ok(Self {
            bytes,
            z: params.z,
            block_bytes: params.block_bytes,
        })
    }

    /// The bucket's plaintext seed header.
    pub fn seed(&self) -> u64 {
        u64::from_le_bytes(self.bytes[..8].try_into().expect("8-byte header"))
    }

    /// Iterates over the occupied slots as borrowed [`SlotView`]s.
    pub fn occupied(&self) -> impl Iterator<Item = SlotView<'a>> + '_ {
        let data_base = BUCKET_HEADER_BYTES + self.z * SLOT_META_BYTES;
        (0..self.z).filter_map(move |slot| {
            let m = BUCKET_HEADER_BYTES + slot * SLOT_META_BYTES;
            if self.bytes[m] == 0 {
                return None;
            }
            let addr = u64::from_le_bytes(self.bytes[m + 1..m + 9].try_into().unwrap());
            let leaf = u32::from_le_bytes(self.bytes[m + 9..m + 13].try_into().unwrap());
            let d = data_base + slot * self.block_bytes;
            Some(SlotView {
                slot,
                addr,
                leaf: Leaf::from(leaf),
                data: &self.bytes[d..d + self.block_bytes],
            })
        })
    }
}

/// Serialises blocks straight into a caller-provided plaintext image: the
/// zero-copy write codec.  The image is fully rewritten — empty slots carry
/// zero metadata and zero data, indistinguishable from real blocks after
/// encryption.
#[derive(Debug)]
pub struct BucketWriter<'a> {
    bytes: &'a mut [u8],
    z: usize,
    block_bytes: usize,
    next_slot: usize,
}

impl<'a> BucketWriter<'a> {
    /// Starts writing a bucket into `bytes`, zeroing the metadata region and
    /// padding and stamping the seed header.  Slot *data* regions are left
    /// untouched until [`BucketWriter::finish`] — pushed slots overwrite
    /// theirs in full, and `finish` zeroes the rest — so no byte of the
    /// image is written twice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`OramParams::bucket_bytes`] long.
    pub fn begin(bytes: &'a mut [u8], params: &OramParams, seed: u64) -> Self {
        assert_eq!(
            bytes.len(),
            params.bucket_bytes(),
            "bucket image must be exactly bucket_bytes long"
        );
        let data_end = BUCKET_HEADER_BYTES + params.z * (SLOT_META_BYTES + params.block_bytes);
        bytes[8..BUCKET_HEADER_BYTES + params.z * SLOT_META_BYTES].fill(0);
        bytes[data_end..].fill(0);
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        Self {
            bytes,
            z: params.z,
            block_bytes: params.block_bytes,
            next_slot: 0,
        }
    }

    /// Number of free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.z - self.next_slot
    }

    /// Writes one block into the next free slot.
    ///
    /// # Panics
    ///
    /// Panics if the bucket is already full, the data length is wrong, or
    /// the leaf exceeds the 4-byte on-disk field (structurally impossible
    /// for leaves produced under [`OramParams`], which caps the leaf level
    /// at 32).
    pub fn push(&mut self, addr: BlockId, leaf: Leaf, data: &[u8]) {
        assert!(self.free_slots() > 0, "bucket overflow");
        assert_eq!(data.len(), self.block_bytes, "block size mismatch");
        let leaf = u32::try_from(leaf).expect("leaf exceeds the 4-byte slot field");
        let slot = self.next_slot;
        self.next_slot += 1;
        let m = BUCKET_HEADER_BYTES + slot * SLOT_META_BYTES;
        self.bytes[m] = 1;
        self.bytes[m + 1..m + 9].copy_from_slice(&addr.to_le_bytes());
        self.bytes[m + 9..m + 13].copy_from_slice(&leaf.to_le_bytes());
        let data_base = BUCKET_HEADER_BYTES + self.z * SLOT_META_BYTES;
        let d = data_base + slot * self.block_bytes;
        self.bytes[d..d + self.block_bytes].copy_from_slice(data);
    }

    /// Completes the image: zeroes the data regions of every slot that was
    /// not pushed, so dummy slots carry zero payload exactly as
    /// [`Bucket::serialize`] produces.  Must be called before the image is
    /// sealed or stored.
    pub fn finish(self) {
        let data_base = BUCKET_HEADER_BYTES + self.z * SLOT_META_BYTES;
        self.bytes
            [data_base + self.next_slot * self.block_bytes..data_base + self.z * self.block_bytes]
            .fill(0);
    }
}
// lint: end

/// A decrypted, in-controller representation of one bucket (owned codec).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Occupied slots (at most Z of them).
    pub blocks: Vec<OramBlock>,
    /// The encryption seed stored in the bucket header (interpretation
    /// depends on the encryption mode).
    pub seed: u64,
    /// Number of slots (Z).
    z: usize,
    /// Payload bytes per block.
    block_bytes: usize,
}

impl Bucket {
    /// Creates an empty bucket for the given parameters.
    pub fn empty(params: &OramParams) -> Self {
        Self {
            blocks: Vec::with_capacity(params.z),
            seed: 0,
            z: params.z,
            block_bytes: params.block_bytes,
        }
    }

    /// Number of free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.z - self.blocks.len()
    }

    /// Adds a block to the bucket.
    ///
    /// # Panics
    ///
    /// Panics if the bucket is already full or the data length is wrong;
    /// callers only push after checking `free_slots`.
    pub fn push(&mut self, block: OramBlock) {
        assert!(self.free_slots() > 0, "bucket overflow");
        assert_eq!(block.data.len(), self.block_bytes, "block size mismatch");
        self.blocks.push(block);
    }

    /// Serialises the bucket (plaintext) into exactly
    /// [`OramParams::bucket_bytes`] bytes (see the module docs for the
    /// layout).
    pub fn serialize(&self, params: &OramParams) -> Vec<u8> {
        let mut out = vec![0u8; params.bucket_bytes()];
        let mut writer = BucketWriter::begin(&mut out, params, self.seed);
        for block in &self.blocks {
            writer.push(block.addr, block.leaf, &block.data);
        }
        writer.finish();
        out
    }

    /// Parses a plaintext bucket image produced by [`Bucket::serialize`].
    ///
    /// # Errors
    ///
    /// As for [`BucketView::parse`].
    pub fn deserialize(
        bytes: &[u8],
        params: &OramParams,
        bucket_index: u64,
    ) -> Result<Self, OramError> {
        let view = BucketView::parse(bytes, params, bucket_index)?;
        Ok(Self {
            blocks: view
                .occupied()
                .map(|slot| OramBlock {
                    addr: slot.addr,
                    leaf: slot.leaf,
                    data: slot.data.to_vec(),
                })
                .collect(),
            seed: view.seed(),
            z: params.z,
            block_bytes: params.block_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OramParams {
        OramParams::new(1 << 10, 64, 4)
    }

    fn block(addr: u64, leaf: u64, fill: u8) -> OramBlock {
        OramBlock {
            addr,
            leaf,
            data: vec![fill; 64],
        }
    }

    #[test]
    fn roundtrip_empty_and_partial_and_full() {
        let p = params();
        for count in 0..=4usize {
            let mut bucket = Bucket::empty(&p);
            bucket.seed = 0xDEADBEEF;
            for i in 0..count {
                bucket.push(block(i as u64 + 10, i as u64, i as u8));
            }
            let bytes = bucket.serialize(&p);
            assert_eq!(bytes.len(), p.bucket_bytes());
            let parsed = Bucket::deserialize(&bytes, &p, 0).unwrap();
            assert_eq!(parsed.seed, 0xDEADBEEF);
            assert_eq!(parsed.blocks, bucket.blocks);
        }
    }

    #[test]
    fn level_tagged_addresses_survive_serialisation() {
        // Regression test for the u32 truncation bug: unified addresses tag
        // the recursion level into bit 56 upward, so the on-disk address
        // field must be a full u64.
        let p = params();
        let tagged = (3u64 << 56) | 12345;
        let mut bucket = Bucket::empty(&p);
        bucket.push(block(tagged, 7, 0x5A));
        bucket.push(block(u64::MAX, 3, 0xA5));
        let bytes = bucket.serialize(&p);
        let parsed = Bucket::deserialize(&bytes, &p, 0).unwrap();
        assert_eq!(parsed.blocks[0].addr, tagged);
        assert_eq!(parsed.blocks[1].addr, u64::MAX);
    }

    #[test]
    fn view_borrows_slot_payloads_without_copying() {
        let p = params();
        let mut bucket = Bucket::empty(&p);
        bucket.seed = 42;
        bucket.push(block(9, 5, 0xEE));
        let bytes = bucket.serialize(&p);
        let view = BucketView::parse(&bytes, &p, 0).unwrap();
        assert_eq!(view.seed(), 42);
        let slots: Vec<_> = view.occupied().collect();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].addr, 9);
        assert_eq!(slots[0].leaf, 5);
        // The payload is a view into the serialised image itself.
        let offset = slots[0].data.as_ptr() as usize - bytes.as_ptr() as usize;
        assert_eq!(offset, BUCKET_HEADER_BYTES + p.z * SLOT_META_BYTES);
        assert!(slots[0].data.iter().all(|&b| b == 0xEE));
    }

    #[test]
    fn writer_overwrites_stale_image_contents() {
        let p = params();
        let mut image = vec![0xFF; p.bucket_bytes()];
        let mut writer = BucketWriter::begin(&mut image, &p, 1);
        writer.push(4, 2, &[0x11; 64]);
        writer.finish();
        let parsed = Bucket::deserialize(&image, &p, 0).unwrap();
        assert_eq!(parsed.seed, 1);
        assert_eq!(parsed.blocks.len(), 1);
        let view = BucketView::parse(&image, &p, 0).unwrap();
        assert_eq!(view.occupied().count(), 1);
        // Begin + finish together zeroed every stale byte outside the pushed
        // slot: the result is bit-identical to the owned serialiser.
        let mut bucket = Bucket::empty(&p);
        bucket.seed = 1;
        bucket.push(block(4, 2, 0x11));
        assert_eq!(image, bucket.serialize(&p));
    }

    #[test]
    fn free_slots_counts_down() {
        let p = params();
        let mut bucket = Bucket::empty(&p);
        assert_eq!(bucket.free_slots(), 4);
        bucket.push(block(1, 1, 1));
        assert_eq!(bucket.free_slots(), 3);
    }

    #[test]
    #[should_panic(expected = "bucket overflow")]
    fn push_beyond_z_panics() {
        let p = params();
        let mut bucket = Bucket::empty(&p);
        for i in 0..5 {
            bucket.push(block(i, 0, 0));
        }
    }

    #[test]
    fn deserialize_rejects_wrong_length() {
        let p = params();
        assert_eq!(
            Bucket::deserialize(&[0u8; 10], &p, 7),
            Err(OramError::MalformedBucket { bucket: 7 })
        );
    }

    #[test]
    fn parse_rejects_out_of_range_leaf() {
        let p = params();
        let mut bucket = Bucket::empty(&p);
        bucket.push(block(1, 0, 0));
        let mut bytes = bucket.serialize(&p);
        // Overwrite slot 0's leaf field with a value ≥ num_leaves.
        let m = BUCKET_HEADER_BYTES;
        bytes[m + 9..m + 13].copy_from_slice(&(p.num_leaves() as u32).to_le_bytes());
        assert_eq!(
            BucketView::parse(&bytes, &p, 5).err(),
            Some(OramError::MalformedBucket { bucket: 5 })
        );
    }

    #[test]
    fn deserialize_rejects_garbage_valid_byte() {
        let p = params();
        let bucket = Bucket::empty(&p);
        let mut bytes = bucket.serialize(&p);
        bytes[BUCKET_HEADER_BYTES] = 0x7F;
        assert!(matches!(
            Bucket::deserialize(&bytes, &p, 3),
            Err(OramError::MalformedBucket { bucket: 3 })
        ));
    }
}
