//! Buckets: fixed-size containers of Z block slots plus an encryption seed.
//!
//! Any slot may be empty at any time; empty slots are filled with dummy
//! blocks so that, after encryption, real and dummy blocks are
//! indistinguishable (§3.1).

use crate::error::OramError;
use crate::params::{OramParams, BUCKET_HEADER_BYTES, SLOT_META_BYTES};
use crate::types::{BlockId, Leaf, OramBlock};
use serde::{Deserialize, Serialize};

/// A decrypted, in-controller representation of one bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Occupied slots (at most Z of them).
    pub blocks: Vec<OramBlock>,
    /// The encryption seed stored in the bucket header (interpretation
    /// depends on the encryption mode).
    pub seed: u64,
    /// Number of slots (Z).
    z: usize,
    /// Payload bytes per block.
    block_bytes: usize,
}

impl Bucket {
    /// Creates an empty bucket for the given parameters.
    pub fn empty(params: &OramParams) -> Self {
        Self {
            blocks: Vec::with_capacity(params.z),
            seed: 0,
            z: params.z,
            block_bytes: params.block_bytes,
        }
    }

    /// Number of free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.z - self.blocks.len()
    }

    /// Adds a block to the bucket.
    ///
    /// # Panics
    ///
    /// Panics if the bucket is already full or the data length is wrong;
    /// the backend only calls this after checking `free_slots`.
    pub fn push(&mut self, block: OramBlock) {
        assert!(self.free_slots() > 0, "bucket overflow");
        assert_eq!(block.data.len(), self.block_bytes, "block size mismatch");
        self.blocks.push(block);
    }

    /// Serialises the bucket (plaintext) into exactly
    /// [`OramParams::bucket_bytes`] bytes.
    ///
    /// Layout: `[seed: 8B][slot 0 meta][slot 1 meta]…[slot 0 data][slot 1
    /// data]…[padding]` where each slot meta is `[valid: 1B][addr: 4B]
    /// [leaf: 4B]`.  Invalid slots carry zero metadata and arbitrary
    /// (here: zero) data, indistinguishable after encryption.
    pub fn serialize(&self, params: &OramParams) -> Vec<u8> {
        let mut out = vec![0u8; params.bucket_bytes()];
        out[..8].copy_from_slice(&self.seed.to_le_bytes());
        let meta_base = BUCKET_HEADER_BYTES;
        let data_base = meta_base + params.z * SLOT_META_BYTES;
        for (slot, block) in self.blocks.iter().enumerate() {
            let m = meta_base + slot * SLOT_META_BYTES;
            out[m] = 1;
            out[m + 1..m + 5].copy_from_slice(&(block.addr as u32).to_le_bytes());
            out[m + 5..m + 9].copy_from_slice(&(block.leaf as u32).to_le_bytes());
            let d = data_base + slot * params.block_bytes;
            out[d..d + params.block_bytes].copy_from_slice(&block.data);
        }
        out
    }

    /// Parses a plaintext bucket image produced by [`Bucket::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`OramError::MalformedBucket`] if the image has the wrong
    /// length or a slot's valid byte is neither 0 nor 1 (which can only
    /// happen if untrusted memory was tampered with and decryption produced
    /// garbage).
    pub fn deserialize(
        bytes: &[u8],
        params: &OramParams,
        bucket_index: u64,
    ) -> Result<Self, OramError> {
        if bytes.len() != params.bucket_bytes() {
            return Err(OramError::MalformedBucket {
                bucket: bucket_index,
            });
        }
        let seed = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte header"));
        let meta_base = BUCKET_HEADER_BYTES;
        let data_base = meta_base + params.z * SLOT_META_BYTES;
        let mut blocks = Vec::new();
        for slot in 0..params.z {
            let m = meta_base + slot * SLOT_META_BYTES;
            match bytes[m] {
                0 => continue,
                1 => {
                    let addr = u32::from_le_bytes(bytes[m + 1..m + 5].try_into().unwrap());
                    let leaf = u32::from_le_bytes(bytes[m + 5..m + 9].try_into().unwrap());
                    let d = data_base + slot * params.block_bytes;
                    blocks.push(OramBlock {
                        addr: BlockId::from(addr),
                        leaf: Leaf::from(leaf),
                        data: bytes[d..d + params.block_bytes].to_vec(),
                    });
                }
                _ => {
                    return Err(OramError::MalformedBucket {
                        bucket: bucket_index,
                    })
                }
            }
        }
        Ok(Self {
            blocks,
            seed,
            z: params.z,
            block_bytes: params.block_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OramParams {
        OramParams::new(1 << 10, 64, 4)
    }

    fn block(addr: u64, leaf: u64, fill: u8) -> OramBlock {
        OramBlock {
            addr,
            leaf,
            data: vec![fill; 64],
        }
    }

    #[test]
    fn roundtrip_empty_and_partial_and_full() {
        let p = params();
        for count in 0..=4usize {
            let mut bucket = Bucket::empty(&p);
            bucket.seed = 0xDEADBEEF;
            for i in 0..count {
                bucket.push(block(i as u64 + 10, i as u64, i as u8));
            }
            let bytes = bucket.serialize(&p);
            assert_eq!(bytes.len(), p.bucket_bytes());
            let parsed = Bucket::deserialize(&bytes, &p, 0).unwrap();
            assert_eq!(parsed.seed, 0xDEADBEEF);
            assert_eq!(parsed.blocks, bucket.blocks);
        }
    }

    #[test]
    fn free_slots_counts_down() {
        let p = params();
        let mut bucket = Bucket::empty(&p);
        assert_eq!(bucket.free_slots(), 4);
        bucket.push(block(1, 1, 1));
        assert_eq!(bucket.free_slots(), 3);
    }

    #[test]
    #[should_panic(expected = "bucket overflow")]
    fn push_beyond_z_panics() {
        let p = params();
        let mut bucket = Bucket::empty(&p);
        for i in 0..5 {
            bucket.push(block(i, 0, 0));
        }
    }

    #[test]
    fn deserialize_rejects_wrong_length() {
        let p = params();
        assert_eq!(
            Bucket::deserialize(&[0u8; 10], &p, 7),
            Err(OramError::MalformedBucket { bucket: 7 })
        );
    }

    #[test]
    fn deserialize_rejects_garbage_valid_byte() {
        let p = params();
        let bucket = Bucket::empty(&p);
        let mut bytes = bucket.serialize(&p);
        bytes[BUCKET_HEADER_BYTES] = 0x7F;
        assert!(matches!(
            Bucket::deserialize(&bytes, &p, 3),
            Err(OramError::MalformedBucket { bucket: 3 })
        ));
    }
}
