//! Backend activity statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::PathOramBackend`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendStats {
    /// Path accesses performed (read, write or readrmv).
    pub path_accesses: u64,
    /// Append operations (no tree access).
    pub appends: u64,
    /// Bytes read from untrusted memory.
    pub bytes_read: u64,
    /// Bytes written to untrusted memory.
    pub bytes_written: u64,
    /// Real blocks encountered while reading paths.
    pub real_blocks_fetched: u64,
    /// Real blocks evicted back into the tree.
    pub blocks_evicted: u64,
    /// Dummy blocks written during evictions.
    pub dummies_written: u64,
    /// Maximum stash occupancy observed (after eviction).
    pub max_stash_occupancy: usize,
}

impl BackendStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Average bytes moved per path access, or `None` if no accesses
    /// occurred.
    pub fn bytes_per_access(&self) -> Option<f64> {
        if self.path_accesses == 0 {
            None
        } else {
            Some(self.total_bytes() as f64 / self.path_accesses as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_access_handles_zero() {
        let mut s = BackendStats::default();
        assert_eq!(s.bytes_per_access(), None);
        s.path_accesses = 2;
        s.bytes_read = 100;
        s.bytes_written = 100;
        assert_eq!(s.bytes_per_access(), Some(100.0));
    }
}
