//! Backend activity statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::PathOramBackend`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendStats {
    /// Path accesses performed (read, write or readrmv).
    pub path_accesses: u64,
    /// Append operations (no tree access).
    pub appends: u64,
    /// Bytes read from untrusted memory.
    pub bytes_read: u64,
    /// Bytes written to untrusted memory.
    pub bytes_written: u64,
    /// Real blocks encountered while reading paths.
    pub real_blocks_fetched: u64,
    /// Buckets run through the cipher when reading paths (zero when the
    /// encryption mode is `None`).  Together with `buckets_encrypted` this
    /// makes the crypto work per access visible in benches and figures.
    pub buckets_decrypted: u64,
    /// Buckets run through the cipher when writing paths back (zero when
    /// the encryption mode is `None`).
    pub buckets_encrypted: u64,
    /// Real blocks evicted back into the tree.
    pub blocks_evicted: u64,
    /// Dummy blocks written during evictions.
    pub dummies_written: u64,
    /// Maximum stash occupancy observed (after eviction).
    pub max_stash_occupancy: usize,
}

impl BackendStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Average bytes moved per path access, or `None` if no accesses
    /// occurred.
    pub fn bytes_per_access(&self) -> Option<f64> {
        if self.path_accesses == 0 {
            None
        } else {
            Some(self.total_bytes() as f64 / self.path_accesses as f64)
        }
    }

    /// Serialises the counters into a snapshot sink (field order fixed by
    /// [`BackendStats::load`]; both sides use exhaustive field lists so a
    /// new counter fails to compile here until it is persisted too).
    pub fn save(&self, out: &mut Vec<u8>) {
        use crate::snapshot::put_u64;
        let BackendStats {
            path_accesses,
            appends,
            bytes_read,
            bytes_written,
            real_blocks_fetched,
            buckets_decrypted,
            buckets_encrypted,
            blocks_evicted,
            dummies_written,
            max_stash_occupancy,
        } = self;
        put_u64(out, *path_accesses);
        put_u64(out, *appends);
        put_u64(out, *bytes_read);
        put_u64(out, *bytes_written);
        put_u64(out, *real_blocks_fetched);
        put_u64(out, *buckets_decrypted);
        put_u64(out, *buckets_encrypted);
        put_u64(out, *blocks_evicted);
        put_u64(out, *dummies_written);
        put_u64(out, *max_stash_occupancy as u64);
    }

    /// Deserialises counters written by [`BackendStats::save`].
    ///
    /// # Errors
    ///
    /// [`crate::OramError::Snapshot`] on truncation.
    pub fn load(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::OramError> {
        Ok(BackendStats {
            path_accesses: r.u64()?,
            appends: r.u64()?,
            bytes_read: r.u64()?,
            bytes_written: r.u64()?,
            real_blocks_fetched: r.u64()?,
            buckets_decrypted: r.u64()?,
            buckets_encrypted: r.u64()?,
            blocks_evicted: r.u64()?,
            dummies_written: r.u64()?,
            max_stash_occupancy: r.u64()? as usize,
        })
    }

    /// Accumulates another backend's counters into this one (used by
    /// frontends that own several backends, e.g. the recursive baseline's
    /// one-tree-per-level layout).
    pub fn accumulate(&mut self, other: &BackendStats) {
        self.path_accesses += other.path_accesses;
        self.appends += other.appends;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.real_blocks_fetched += other.real_blocks_fetched;
        self.buckets_decrypted += other.buckets_decrypted;
        self.buckets_encrypted += other.buckets_encrypted;
        self.blocks_evicted += other.blocks_evicted;
        self.dummies_written += other.dummies_written;
        self.max_stash_occupancy = self.max_stash_occupancy.max(other.max_stash_occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_access_handles_zero() {
        let mut s = BackendStats::default();
        assert_eq!(s.bytes_per_access(), None);
        s.path_accesses = 2;
        s.bytes_read = 100;
        s.bytes_written = 100;
        assert_eq!(s.bytes_per_access(), Some(100.0));
    }
}
