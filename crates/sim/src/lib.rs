//! Trace-driven timing simulation of the Freecursive ORAM secure processor,
//! scalable to the paper's 4–64 GB ORAM capacities.
//!
//! The functional controller in the `freecursive` crate stores real block
//! contents and therefore cannot be instantiated at 2^26+ blocks on a laptop.
//! The paper's performance figures, however, never depend on block contents —
//! only on *which* backend accesses happen (PLB behaviour, recursion depth)
//! and *how long* each one takes (path length, bucket size, DRAM timing).
//! `docs/ARCHITECTURE.md` at the workspace root maps this timing stack
//! onto the functional crates it mirrors.
//! This crate models exactly that:
//!
//! * [`latency::OramLatencyModel`] — average latency of one backend access,
//!   obtained by replaying subtree-layout path reads/writes through the
//!   cycle-level `dram-sim` model (reproduces Table 2).
//! * [`scheme::SchemePoint`] — the named design points of the evaluation
//!   (`R_X8`, `P_X16`, `PC_X32`, `PC_X64`, `PI_X8`, `PIC_X32`, Phantom-4KB).
//! * [`timing::TimingOram`] — an address-only model of each frontend: PLB
//!   contents, recursion walks and byte counts, but no data.
//! * [`runner`] — drives synthetic SPEC traces through the `cache-sim`
//!   processor model with either a flat DRAM (insecure baseline) or a
//!   [`timing::OramMemory`], producing slowdowns.
//! * [`experiments`] — one driver per table/figure of the paper; the `bench`
//!   crate's binaries print their results.
//!
//! # Examples
//!
//! ```
//! use oram_sim::{scheme::SchemePoint, runner::SimulationConfig, runner};
//! use trace_gen::SpecBenchmark;
//!
//! let cfg = SimulationConfig::quick_test();
//! let run = runner::run_benchmark(SpecBenchmark::Sjeng, SchemePoint::PcX32, &cfg);
//! assert!(run.slowdown >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod latency;
pub mod phantom;
pub mod report;
pub mod runner;
pub mod scheme;
pub mod timing;

pub use latency::OramLatencyModel;
pub use runner::{BenchmarkRun, SimulationConfig};
pub use scheme::SchemePoint;
pub use timing::{OramMemory, TimingOram};
