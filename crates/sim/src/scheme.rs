//! The named design points of the evaluation.
//!
//! `SchemePoint` now lives in the `freecursive` core crate (it is the key of
//! [`freecursive::OramBuilder`]); this module re-exports it so existing
//! `oram_sim::scheme::SchemePoint` paths keep working.

pub use freecursive::scheme::SchemePoint;
