//! Drives synthetic SPEC traces through the secure-processor model under a
//! chosen ORAM design point and reports slowdowns and traffic.

use crate::phantom::{PhantomConfig, PhantomMemory, PhantomOram};
use crate::scheme::SchemePoint;
use crate::timing::{OramMemory, TimingOram, TimingOramConfig, TrafficStats};
use cache_sim::{
    CacheConfig, FlatLatencyMemory, HierarchyConfig, ProcessorConfig, RunResult, SecureProcessor,
};
use dram_sim::DramConfig;
use serde::{Deserialize, Serialize};
use trace_gen::{SpecBenchmark, TraceGenerator};

/// Everything needed to reproduce one run: processor, ORAM and trace scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Logical ORAM capacity in bytes.
    pub data_capacity_bytes: u64,
    /// ORAM block size = LLC line size in bytes.
    pub block_bytes: usize,
    /// Slots per bucket (Z).
    pub z: usize,
    /// PLB capacity in bytes.
    pub plb_capacity_bytes: usize,
    /// PLB associativity.
    pub plb_associativity: usize,
    /// On-chip PosMap bytes.
    pub onchip_posmap_bytes: usize,
    /// DRAM channel count.
    pub dram_channels: usize,
    /// Processor clock in MHz (1300 in Table 1, 2600 in the Figure 8
    /// configuration of \[26\]).
    pub cpu_clock_mhz: f64,
    /// Average insecure DRAM access latency in CPU cycles (58 at 1.3 GHz).
    pub insecure_latency: u64,
    /// Memory references used to warm the caches and the PLB before
    /// measurement begins (the paper warms over 1 B instructions).
    pub warmup_accesses: u64,
    /// Number of memory references to replay per measured run.
    pub memory_accesses: u64,
    /// Random-path samples for DRAM latency calibration.
    pub latency_samples: usize,
    /// Trace seed.
    pub trace_seed: u64,
}

impl SimulationConfig {
    /// The paper's Table 1 configuration: 4 GB ORAM, 64 B blocks, Z = 4,
    /// 64 KB PLB, 8 KB on-chip PosMap, 2 DRAM channels, 1.3 GHz core.
    pub fn paper_default() -> Self {
        Self {
            data_capacity_bytes: 4 << 30,
            block_bytes: 64,
            z: 4,
            plb_capacity_bytes: 64 << 10,
            plb_associativity: 1,
            onchip_posmap_bytes: 8 << 10,
            dram_channels: 2,
            cpu_clock_mhz: 1300.0,
            insecure_latency: 58,
            warmup_accesses: 150_000,
            memory_accesses: 300_000,
            latency_samples: 40,
            trace_seed: 2015,
        }
    }

    /// The configuration of Ren et al. \[26\] used for Figure 8: 4 DRAM
    /// channels, a 2.6 GHz core, 128-byte cache lines / ORAM blocks, Z = 3.
    pub fn isca13_params() -> Self {
        Self {
            block_bytes: 128,
            z: 3,
            dram_channels: 4,
            cpu_clock_mhz: 2600.0,
            insecure_latency: 116,
            ..Self::paper_default()
        }
    }

    /// A scaled-down configuration for unit tests.
    pub fn quick_test() -> Self {
        Self {
            data_capacity_bytes: 256 << 20,
            warmup_accesses: 40_000,
            memory_accesses: 20_000,
            latency_samples: 4,
            ..Self::paper_default()
        }
    }

    /// The DRAM configuration implied by this simulation configuration.
    pub fn dram(&self) -> DramConfig {
        DramConfig {
            channels: self.dram_channels,
            cpu_clock_mhz: self.cpu_clock_mhz,
            ..DramConfig::default()
        }
    }

    /// The timing-ORAM configuration for a scheme.
    ///
    /// The R_X8 baseline is given a 256 KB on-chip PosMap (rather than the
    /// PLB designs' 8 KB), exactly as the paper's evaluation does (§7.1.4:
    /// "R_X8 ... giving it a 272 KB on-chip PosMap"; Figure 7 gives it "up to
    /// a 256 KB on-chip PosMap").
    pub fn oram_config(&self, scheme: SchemePoint) -> TimingOramConfig {
        let onchip_posmap_bytes = if scheme == SchemePoint::RX8 {
            self.onchip_posmap_bytes.max(256 << 10)
        } else {
            self.onchip_posmap_bytes
        };
        TimingOramConfig {
            scheme,
            data_capacity_bytes: self.data_capacity_bytes,
            block_bytes: self.block_bytes,
            z: self.z,
            plb_capacity_bytes: self.plb_capacity_bytes,
            plb_associativity: self.plb_associativity,
            onchip_posmap_bytes,
            dram: self.dram(),
            latency_samples: self.latency_samples,
        }
    }

    /// The processor configuration (cache line size follows the ORAM block).
    pub fn processor(&self) -> ProcessorConfig {
        ProcessorConfig {
            hierarchy: HierarchyConfig {
                l1: CacheConfig {
                    capacity_bytes: 32 << 10,
                    associativity: 4,
                    line_bytes: self.block_bytes,
                },
                l2: CacheConfig {
                    capacity_bytes: 1 << 20,
                    associativity: 16,
                    line_bytes: self.block_bytes,
                },
                ..HierarchyConfig::default()
            },
            cycles_per_instruction: 1,
        }
    }
}

/// The outcome of one (benchmark, scheme) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRun {
    /// The benchmark.
    pub benchmark: SpecBenchmark,
    /// The design point.
    pub scheme: SchemePoint,
    /// Processor-side results under the scheme.
    pub result: RunResult,
    /// Processor-side results of the insecure baseline on the same trace.
    pub insecure: RunResult,
    /// Slowdown relative to the insecure baseline (the y-axis of Figures 6
    /// and 8).
    pub slowdown: f64,
    /// ORAM traffic statistics (zeroed for the insecure/Phantom runs).
    pub traffic: TrafficStats,
}

impl BenchmarkRun {
    /// Average bytes moved per ORAM request, split `(posmap, data)` — the
    /// quantity plotted in Figures 7 and 8 (right).
    pub fn bytes_per_access(&self) -> (f64, f64) {
        self.traffic.bytes_per_request()
    }
}

/// Drives a processor with the benchmark's trace: a warm-up phase (caches and
/// PLB fill up, statistics discarded) followed by the measured phase.
fn drive<M: cache_sim::MainMemory>(
    cpu: &mut SecureProcessor<M>,
    benchmark: SpecBenchmark,
    cfg: &SimulationConfig,
    reset_memory: impl FnOnce(&mut M),
) {
    let mut gen = TraceGenerator::new(benchmark.profile(), cfg.trace_seed);
    for access in gen.by_ref().take(cfg.warmup_accesses as usize) {
        cpu.step(access.gap, access.addr, access.is_write);
    }
    cpu.reset_result();
    reset_memory(cpu.memory_mut());
    for access in gen.take(cfg.memory_accesses as usize) {
        cpu.step(access.gap, access.addr, access.is_write);
    }
}

/// Runs the insecure (flat DRAM) baseline for a benchmark.
pub fn run_insecure(benchmark: SpecBenchmark, cfg: &SimulationConfig) -> RunResult {
    let mut cpu = SecureProcessor::new(
        cfg.processor(),
        FlatLatencyMemory {
            latency: cfg.insecure_latency,
        },
    );
    drive(&mut cpu, benchmark, cfg, |_| {});
    cpu.result()
}

/// Runs one benchmark under one ORAM design point (or the insecure baseline)
/// and returns the paired results.
pub fn run_benchmark(
    benchmark: SpecBenchmark,
    scheme: SchemePoint,
    cfg: &SimulationConfig,
) -> BenchmarkRun {
    let insecure = run_insecure(benchmark, cfg);
    match scheme {
        SchemePoint::Insecure => BenchmarkRun {
            benchmark,
            scheme,
            result: insecure,
            insecure,
            slowdown: 1.0,
            traffic: TrafficStats::default(),
        },
        SchemePoint::Phantom4K => {
            let oram = PhantomOram::new(PhantomConfig {
                dram: cfg.dram(),
                latency_samples: cfg.latency_samples,
                ..PhantomConfig::default()
            });
            let mut cpu = SecureProcessor::new(cfg.processor(), PhantomMemory::new(oram));
            drive(&mut cpu, benchmark, cfg, |m| m.reset_stats());
            let result = cpu.result();
            let phantom = cpu.memory().oram().stats();
            let traffic = TrafficStats {
                requests: phantom.requests,
                data_accesses: phantom.oram_accesses,
                data_bytes: phantom.bytes_moved,
                cycles: phantom.cycles,
                ..TrafficStats::default()
            };
            BenchmarkRun {
                benchmark,
                scheme,
                result,
                insecure,
                slowdown: result.total_cycles as f64 / insecure.total_cycles as f64,
                traffic,
            }
        }
        _ => {
            let oram = TimingOram::new(cfg.oram_config(scheme));
            let mut cpu = SecureProcessor::new(cfg.processor(), OramMemory::new(oram));
            drive(&mut cpu, benchmark, cfg, |m| m.reset_stats());
            let result = cpu.result();
            let traffic = *cpu.memory().oram().stats();
            BenchmarkRun {
                benchmark,
                scheme,
                result,
                insecure,
                slowdown: result.total_cycles as f64 / insecure.total_cycles as f64,
                traffic,
            }
        }
    }
}

/// Geometric mean of a slice of positive numbers (the paper reports geomean
/// speedups).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insecure_run_has_slowdown_one() {
        let cfg = SimulationConfig::quick_test();
        let run = run_benchmark(SpecBenchmark::Sjeng, SchemePoint::Insecure, &cfg);
        assert_eq!(run.slowdown, 1.0);
    }

    #[test]
    fn oram_slowdowns_are_ordered_sensibly() {
        // Memory-bound libquantum must suffer far more than compute-bound
        // sjeng, and the PLB design must beat the recursive baseline —
        // the qualitative content of Figure 6.
        let cfg = SimulationConfig::quick_test();
        let libq_base = run_benchmark(SpecBenchmark::Libquantum, SchemePoint::RX8, &cfg);
        let libq_pc = run_benchmark(SpecBenchmark::Libquantum, SchemePoint::PcX32, &cfg);
        let sjeng_base = run_benchmark(SpecBenchmark::Sjeng, SchemePoint::RX8, &cfg);
        assert!(libq_base.slowdown > 2.0 * sjeng_base.slowdown);
        assert!(libq_pc.slowdown < libq_base.slowdown);
        assert!(sjeng_base.slowdown > 1.0);
    }

    #[test]
    fn pc_reduces_posmap_traffic_versus_baseline() {
        let cfg = SimulationConfig::quick_test();
        // libquantum's streaming miss pattern is the PLB's best case: nearly
        // every PosMap lookup hits.  (Benchmarks whose misses are dominated by
        // pointer chasing over many megabytes see smaller reductions; the
        // averaged behaviour is recorded in EXPERIMENTS.md.)
        let base = run_benchmark(SpecBenchmark::Libquantum, SchemePoint::RX8, &cfg);
        let pc = run_benchmark(SpecBenchmark::Libquantum, SchemePoint::PcX32, &cfg);
        let (base_pm, _) = base.bytes_per_access();
        let (pc_pm, _) = pc.bytes_per_access();
        assert!(
            pc_pm < base_pm * 0.5,
            "PLB+compression should cut PosMap traffic: {pc_pm} vs {base_pm}"
        );
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
