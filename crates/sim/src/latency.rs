//! Backend access latency: how many processor cycles one ORAM path
//! read+write takes for a given tree geometry and DRAM configuration.
//!
//! Reproduces Table 2 ("ORAM access latency by DRAM channel count") and
//! supplies the per-access latencies used by the trace-driven runs.

use dram_sim::{DramConfig, DramSim, SubtreeLayout};
use path_oram::OramParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed pipeline latencies measured from the hardware prototype (Table 1),
/// in processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineLatencies {
    /// Frontend latency: PLB evict/refill handling, charged once per PosMap
    /// block fetch.
    pub frontend: u64,
    /// Backend latency: serialisers, buffers, stash pipeline, charged per
    /// backend access.
    pub backend: u64,
    /// AES-128 pipeline depth (cycles) — first-word decryption latency.
    pub aes: u64,
    /// SHA3-224 latency (cycles) — MAC check of the block of interest.
    pub sha3: u64,
}

impl Default for PipelineLatencies {
    fn default() -> Self {
        Self {
            frontend: 20,
            backend: 30,
            aes: 21,
            sha3: 18,
        }
    }
}

/// The latency model for one ORAM tree.
#[derive(Debug, Clone)]
pub struct OramLatencyModel {
    /// Tree geometry.
    params: OramParams,
    /// Number of subtree-layout levels packed per DRAM row region.
    layout: SubtreeLayout,
    /// DRAM configuration.
    dram_config: DramConfig,
    /// Fixed pipeline latencies.
    pub pipeline: PipelineLatencies,
    /// Cached average path read+write latency in CPU cycles (excludes the
    /// fixed pipeline terms).
    average_tree_latency: u64,
}

impl OramLatencyModel {
    /// Builds the model and calibrates the average tree latency by replaying
    /// `samples` random paths through the cycle-level DRAM model.
    pub fn new(params: OramParams, dram_config: DramConfig, samples: usize) -> Self {
        // Pack as many tree levels per subtree as fit a DRAM row.
        let bucket = params.bucket_bytes() as u64;
        let row = dram_config.row_bytes() as u64 * dram_config.channels as u64;
        let mut k = 1u32;
        while ((1u64 << (k + 1)) - 1) * bucket <= row && k < params.levels() {
            k += 1;
        }
        let layout = SubtreeLayout::new(params.levels(), bucket, k, 0);
        let mut model = Self {
            params,
            layout,
            dram_config,
            pipeline: PipelineLatencies::default(),
            average_tree_latency: 0,
        };
        model.average_tree_latency = model.calibrate(samples.max(1));
        model
    }

    /// The tree geometry.
    pub fn params(&self) -> &OramParams {
        &self.params
    }

    /// Average ORAM-tree latency (path read + write, no pipeline constants)
    /// in processor cycles — the quantity reported in Table 2.
    pub fn tree_latency_cycles(&self) -> u64 {
        self.average_tree_latency
    }

    /// Latency of a full backend access including the fixed backend pipeline
    /// and the AES first-word latency.
    pub fn backend_access_cycles(&self, pmmac: bool) -> u64 {
        self.average_tree_latency
            + self.pipeline.backend
            + self.pipeline.aes
            + if pmmac { self.pipeline.sha3 } else { 0 }
    }

    /// Extra cycles charged when a PosMap block is refilled into the PLB.
    pub fn frontend_cycles(&self) -> u64 {
        self.pipeline.frontend
    }

    fn calibrate(&self, samples: usize) -> u64 {
        let mut rng = StdRng::seed_from_u64(0x7ab1e2);
        let leaves = self.params.num_leaves();
        let bucket = self.params.bucket_bytes();
        let mut total = 0u64;
        for _ in 0..samples {
            // A fresh DRAM state per sample: each access is measured from an
            // idle memory system, as in Table 2.
            let mut dram = DramSim::new(self.dram_config.clone());
            let leaf = rng.gen_range(0..leaves);
            let mut now = 0u64;
            let mut done = 0u64;
            // Path read followed by path write-back of the same buckets.
            for pass in 0..2 {
                for addr in self.layout.path_addresses(leaf) {
                    done = done.max(dram.access(addr, bucket, pass == 1, now));
                }
                now = done;
            }
            total += self.dram_config.dram_to_cpu_cycles(done);
        }
        total / samples as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_gig_params() -> OramParams {
        OramParams::new(1 << 26, 64, 4)
    }

    #[test]
    fn two_channel_latency_matches_table_2_ballpark() {
        let dram = DramConfig {
            channels: 2,
            ..DramConfig::default()
        };
        let model = OramLatencyModel::new(four_gig_params(), dram, 50);
        let latency = model.tree_latency_cycles();
        // Table 2 reports 1208 cycles; accept the same order with margin for
        // the simplified DRAM model.
        assert!(
            (800..2000).contains(&latency),
            "2-channel tree latency {latency} out of expected range"
        );
    }

    #[test]
    fn latency_decreases_with_channels_but_sublinearly() {
        let mut latencies = Vec::new();
        for channels in [1usize, 2, 4, 8] {
            let dram = DramConfig {
                channels,
                ..DramConfig::default()
            };
            let model = OramLatencyModel::new(four_gig_params(), dram, 30);
            latencies.push(model.tree_latency_cycles());
        }
        assert!(
            latencies.windows(2).all(|w| w[1] < w[0]),
            "latencies must decrease: {latencies:?}"
        );
        let speedup_8 = latencies[0] as f64 / latencies[3] as f64;
        assert!(
            speedup_8 < 8.0 && speedup_8 > 2.0,
            "8-channel speedup {speedup_8} should be sub-linear (Table 2: ~4.6x)"
        );
    }

    #[test]
    fn pmmac_adds_only_the_sha3_pipeline_latency() {
        let model =
            OramLatencyModel::new(OramParams::new(1 << 20, 64, 4), DramConfig::default(), 10);
        assert_eq!(
            model.backend_access_cycles(true) - model.backend_access_cycles(false),
            model.pipeline.sha3
        );
    }

    #[test]
    fn larger_blocks_cost_proportionally_more() {
        let dram = DramConfig::default();
        let small = OramLatencyModel::new(OramParams::new(1 << 20, 64, 4), dram.clone(), 20);
        let large = OramLatencyModel::new(
            OramParams::new(1 << 14, 4096, 4).with_leaf_level(19),
            dram,
            20,
        );
        // Phantom-style 4 KB blocks move ~40x the bytes per access.
        let ratio = large.tree_latency_cycles() as f64 / small.tree_latency_cycles() as f64;
        assert!(ratio > 10.0, "ratio {ratio}");
    }
}
