//! One driver per table/figure of the paper's evaluation (§7).
//!
//! Every driver returns a structured result with a `render()` method that
//! prints the same rows/series the paper reports; the `bench` crate exposes
//! one binary per driver.  The EXPERIMENTS.md file at the repository root
//! records paper-reported versus measured values.

pub mod ablations;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hash_bandwidth;
pub mod table2;
pub mod table3;

use serde::{Deserialize, Serialize};
use trace_gen::SpecBenchmark;

/// How much work an experiment driver should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// A few benchmarks, short traces — used by unit tests and smoke runs.
    Quick,
    /// All benchmarks, full trace lengths — used by the `bench` binaries.
    Paper,
}

impl ExperimentScale {
    /// The benchmarks to evaluate at this scale.
    pub fn benchmarks(&self) -> Vec<SpecBenchmark> {
        match self {
            ExperimentScale::Quick => vec![
                SpecBenchmark::Bzip2,
                SpecBenchmark::Libquantum,
                SpecBenchmark::Sjeng,
            ],
            ExperimentScale::Paper => SpecBenchmark::all().to_vec(),
        }
    }

    /// Memory references per run at this scale.
    pub fn memory_accesses(&self) -> u64 {
        match self {
            ExperimentScale::Quick => 20_000,
            ExperimentScale::Paper => 300_000,
        }
    }

    /// Warm-up memory references before measurement starts.
    pub fn warmup_accesses(&self) -> u64 {
        match self {
            ExperimentScale::Quick => 60_000,
            ExperimentScale::Paper => 150_000,
        }
    }

    /// DRAM-latency calibration samples at this scale.
    pub fn latency_samples(&self) -> usize {
        match self {
            ExperimentScale::Quick => 4,
            ExperimentScale::Paper => 40,
        }
    }
}
