//! Table 2: ORAM tree access latency (in processor cycles) as a function of
//! DRAM channel count, for the 4 GB / 64-byte-block / Z = 4 configuration.

use crate::latency::OramLatencyModel;
use crate::report::format_table;
use dram_sim::DramConfig;
use path_oram::OramParams;
use serde::{Deserialize, Serialize};

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// DRAM channel count.
    pub channels: usize,
    /// Average ORAM tree latency in processor cycles.
    pub tree_latency_cycles: u64,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per channel count (1, 2, 4, 8).
    pub rows: Vec<Table2Row>,
}

/// Regenerates Table 2 with `samples` random paths per channel count.
pub fn run(samples: usize) -> Table2Result {
    let rows = [1usize, 2, 4, 8]
        .into_iter()
        .map(|channels| {
            let dram = DramConfig {
                channels,
                ..DramConfig::default()
            };
            let params = OramParams::new(1 << 26, 64, 4);
            let model = OramLatencyModel::new(params, dram, samples);
            Table2Row {
                channels,
                tree_latency_cycles: model.tree_latency_cycles(),
            }
        })
        .collect();
    Table2Result { rows }
}

impl Table2Result {
    /// Renders the table; the paper's values are 2147 / 1208 / 697 / 463.
    pub fn render(&self) -> String {
        let paper = [2147u64, 1208, 697, 463];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .zip(paper.iter())
            .map(|(r, p)| {
                vec![
                    r.channels.to_string(),
                    r.tree_latency_cycles.to_string(),
                    p.to_string(),
                ]
            })
            .collect();
        format!(
            "Table 2: ORAM access latency by DRAM channel count (4 GB ORAM, 64 B blocks, Z=4)\n{}",
            format_table(&["channels", "measured (cycles)", "paper (cycles)"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotonically_decreasing_in_channels() {
        let t = run(20);
        assert_eq!(t.rows.len(), 4);
        assert!(t
            .rows
            .windows(2)
            .all(|w| w[1].tree_latency_cycles < w[0].tree_latency_cycles));
    }

    #[test]
    fn two_channel_row_is_near_the_paper_value() {
        let t = run(30);
        let two = t.rows.iter().find(|r| r.channels == 2).unwrap();
        // Paper: 1208 cycles.  Accept a generous band for the simplified DRAM
        // model; the point of the table is the scaling trend.
        assert!(
            (700..2200).contains(&two.tree_latency_cycles),
            "2-channel latency {}",
            two.tree_latency_cycles
        );
    }

    #[test]
    fn render_mentions_every_channel_count() {
        let text = run(5).render();
        for c in ["1", "2", "4", "8"] {
            assert!(text.contains(c));
        }
    }
}
