//! Table 3: post-synthesis area breakdown of the ORAM controller for 1, 2 and
//! 4 DRAM channels, plus the §7.2.3 alternative-design estimates.

use crate::report::{f2, format_table};
use area_model::{AreaBreakdown, AreaModel};
use serde::{Deserialize, Serialize};

/// The full table plus the alternatives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    /// Breakdown for 1, 2 and 4 channels.
    pub breakdowns: Vec<AreaBreakdown>,
    /// Total area of the no-recursion (flat on-chip PosMap) alternative for
    /// 2 channels, in mm² (§7.2.3: ~5 mm²).
    pub flat_posmap_mm2: f64,
    /// Total area with a 64 KB PLB for 1 channel, in mm².
    pub plb64_total_mm2: f64,
    /// Relative area increase of the 64 KB PLB design (§7.2.3: 29 %).
    pub plb64_increase: f64,
}

/// Regenerates Table 3 from the analytical area model.
pub fn run() -> Table3Result {
    let model = AreaModel::default();
    let breakdowns = vec![model.breakdown(1), model.breakdown(2), model.breakdown(4)];
    let flat_posmap_mm2 = model.flat_posmap_total(2, 1 << 20, 20);
    let plb64 = model.with_plb_bytes(64 << 10).breakdown(1);
    let plb64_increase = plb64.total_mm2 / breakdowns[0].total_mm2 - 1.0;
    Table3Result {
        breakdowns,
        flat_posmap_mm2,
        plb64_total_mm2: plb64.total_mm2,
        plb64_increase,
    }
}

impl Table3Result {
    /// Renders the table in the same layout as the paper (percent of total
    /// area per component, total in mm²).
    pub fn render(&self) -> String {
        let headers = ["component", "1 channel", "2 channels", "4 channels"];
        let pct = |part: f64, b: &AreaBreakdown| f2(100.0 * part / b.total_mm2);
        let row = |name: &str, f: &dyn Fn(&AreaBreakdown) -> f64| -> Vec<String> {
            let mut cells = vec![name.to_string()];
            for b in &self.breakdowns {
                cells.push(pct(f(b), b));
            }
            cells
        };
        let mut rows = vec![
            row("Frontend %", &|b| b.frontend_mm2()),
            row("  PosMap %", &|b| b.posmap_mm2),
            row("  PLB %", &|b| b.plb_mm2),
            row("  PMMAC %", &|b| b.pmmac_mm2),
            row("  Misc %", &|b| b.misc_mm2),
            row("Backend %", &|b| b.backend_mm2()),
            row("  Stash %", &|b| b.stash_mm2),
            row("  AES %", &|b| b.aes_mm2),
        ];
        let mut total = vec!["Total cell area (mm2)".to_string()];
        for b in &self.breakdowns {
            total.push(format!("{:.3}", b.total_mm2));
        }
        rows.push(total);
        format!(
            "Table 3: ORAM controller area breakdown (32 nm, analytical model calibrated to the paper)\n{}\n\
             Alternatives (7.2.3):\n\
             - no recursion, flat on-chip PosMap (2 ch):  {:.2} mm2 (paper: ~5 mm2, >10x)\n\
             - 64 KB PLB (1 ch): {:.3} mm2, +{:.0}% (paper: +29%)\n",
            format_table(&headers, &rows),
            self.flat_posmap_mm2,
            self.plb64_total_mm2,
            self.plb64_increase * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_alternatives_are_reported() {
        let t = run();
        assert_eq!(t.breakdowns.len(), 3);
        assert!(t.flat_posmap_mm2 > 10.0 * t.breakdowns[1].total_mm2);
        assert!(t.plb64_increase > 0.2 && t.plb64_increase < 0.4);
        let text = t.render();
        assert!(text.contains("PMMAC"));
        assert!(text.contains("Total cell area"));
    }
}
