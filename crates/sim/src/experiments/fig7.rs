//! Figure 7: average data movement per ORAM access (split into PosMap and
//! Data portions) for five design points at 4, 16 and 64 GB capacities.
//!
//! Shows the scalability argument: the baseline's PosMap traffic grows
//! quickly with capacity, PLB designs stay nearly flat, and the
//! flat-counter PMMAC variant (PI_X8) wastes almost half its bandwidth on
//! PosMap blocks until compression (PIC_X32) fixes it.

use crate::experiments::ExperimentScale;
use crate::report::{format_table, kb};
use crate::runner::{run_benchmark, SimulationConfig};
use crate::scheme::SchemePoint;
use serde::{Deserialize, Serialize};

/// The design points compared in the figure.
pub const SCHEMES: [SchemePoint; 5] = [
    SchemePoint::RX8,
    SchemePoint::PX16,
    SchemePoint::PcX32,
    SchemePoint::PiX8,
    SchemePoint::PicX32,
];

/// The capacities swept, in bytes.
pub const CAPACITIES: [u64; 3] = [4 << 30, 16 << 30, 64 << 30];

/// One (scheme, capacity) bar of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Bar {
    /// The design point.
    pub scheme: SchemePoint,
    /// ORAM capacity in bytes.
    pub capacity_bytes: u64,
    /// Average PosMap bytes moved per ORAM access (averaged over benchmarks).
    pub posmap_bytes_per_access: f64,
    /// Average data bytes moved per ORAM access.
    pub data_bytes_per_access: f64,
}

impl Fig7Bar {
    /// Total bytes moved per access.
    pub fn total(&self) -> f64 {
        self.posmap_bytes_per_access + self.data_bytes_per_access
    }
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// All bars.
    pub bars: Vec<Fig7Bar>,
}

/// Regenerates Figure 7.
pub fn run(scale: ExperimentScale) -> Fig7Result {
    let mut bars = Vec::new();
    for &capacity in CAPACITIES.iter() {
        for &scheme in SCHEMES.iter() {
            let mut posmap_sum = 0.0;
            let mut data_sum = 0.0;
            let benchmarks = scale.benchmarks();
            for &benchmark in &benchmarks {
                let cfg = SimulationConfig {
                    data_capacity_bytes: capacity,
                    memory_accesses: scale.memory_accesses(),
                    warmup_accesses: scale.warmup_accesses(),
                    latency_samples: scale.latency_samples(),
                    ..SimulationConfig::paper_default()
                };
                let run = run_benchmark(benchmark, scheme, &cfg);
                let (p, d) = run.bytes_per_access();
                posmap_sum += p;
                data_sum += d;
            }
            let n = benchmarks.len() as f64;
            bars.push(Fig7Bar {
                scheme,
                capacity_bytes: capacity,
                posmap_bytes_per_access: posmap_sum / n,
                data_bytes_per_access: data_sum / n,
            });
        }
    }
    Fig7Result { bars }
}

impl Fig7Result {
    /// The bar for a given scheme and capacity.
    pub fn bar(&self, scheme: SchemePoint, capacity_bytes: u64) -> Option<&Fig7Bar> {
        self.bars
            .iter()
            .find(|b| b.scheme == scheme && b.capacity_bytes == capacity_bytes)
    }

    /// PosMap-bandwidth reduction of PC_X32 versus R_X8 at a capacity
    /// (paper: 82 % at 4 GB, 90 % at 64 GB).
    pub fn posmap_reduction(&self, capacity_bytes: u64) -> Option<f64> {
        let base = self.bar(SchemePoint::RX8, capacity_bytes)?;
        let pc = self.bar(SchemePoint::PcX32, capacity_bytes)?;
        Some(1.0 - pc.posmap_bytes_per_access / base.posmap_bytes_per_access)
    }

    /// Overall-bandwidth reduction of PC_X32 versus R_X8 at a capacity
    /// (paper: 38 % at 4 GB, 57 % at 64 GB).
    pub fn overall_reduction(&self, capacity_bytes: u64) -> Option<f64> {
        let base = self.bar(SchemePoint::RX8, capacity_bytes)?;
        let pc = self.bar(SchemePoint::PcX32, capacity_bytes)?;
        Some(1.0 - pc.total() / base.total())
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let headers = ["scheme", "capacity", "posmap KB", "data KB", "total KB"];
        let rows: Vec<Vec<String>> = self
            .bars
            .iter()
            .map(|b| {
                vec![
                    b.scheme.label().to_string(),
                    format!("{}GB", b.capacity_bytes >> 30),
                    kb(b.posmap_bytes_per_access),
                    kb(b.data_bytes_per_access),
                    kb(b.total()),
                ]
            })
            .collect();
        let mut out = format!(
            "Figure 7: data moved per ORAM access, averaged over benchmarks\n{}",
            format_table(&headers, &rows)
        );
        if let (Some(p4), Some(o4)) = (
            self.posmap_reduction(4 << 30),
            self.overall_reduction(4 << 30),
        ) {
            out.push_str(&format!(
                "PC_X32 vs R_X8 at 4GB: posmap traffic -{:.0}% (paper 82%), overall -{:.0}% (paper 38%)\n",
                p4 * 100.0,
                o4 * 100.0
            ));
        }
        if let (Some(p64), Some(o64)) = (
            self.posmap_reduction(64 << 30),
            self.overall_reduction(64 << 30),
        ) {
            out.push_str(&format!(
                "PC_X32 vs R_X8 at 64GB: posmap traffic -{:.0}% (paper 90%), overall -{:.0}% (paper 57%)\n",
                p64 * 100.0,
                o64 * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig7Result {
        // Only the 4 GB capacity at quick scale to keep the test fast.
        let mut bars = Vec::new();
        for &scheme in SCHEMES.iter() {
            let cfg = SimulationConfig {
                memory_accesses: 15_000,
                latency_samples: 3,
                ..SimulationConfig::paper_default()
            };
            let run = run_benchmark(trace_gen::SpecBenchmark::Bzip2, scheme, &cfg);
            let (p, d) = run.bytes_per_access();
            bars.push(Fig7Bar {
                scheme,
                capacity_bytes: 4 << 30,
                posmap_bytes_per_access: p,
                data_bytes_per_access: d,
            });
        }
        Fig7Result { bars }
    }

    #[test]
    fn plb_designs_move_fewer_posmap_bytes_than_baseline() {
        // gcc's LLC-miss stream is dominated by its random/pointer-chasing
        // components, so its PLB hit rate (and hence the reduction) is on the
        // low side of the per-benchmark range; the averaged full-scale figure
        // is recorded in EXPERIMENTS.md.
        let fig = quick();
        let reduction = fig.posmap_reduction(4 << 30).unwrap();
        assert!(
            reduction > 0.3,
            "PC_X32 should cut posmap traffic substantially, got {reduction}"
        );
        let overall = fig.overall_reduction(4 << 30).unwrap();
        assert!(overall > 0.08, "overall reduction {overall}");
    }

    #[test]
    fn flat_counter_pmmac_wastes_bandwidth_on_posmap_blocks() {
        // PI_X8's small X means more recursion levels and more PosMap
        // traffic than PIC_X32 (the motivation for combining compression
        // with PMMAC, §7.1.4).
        let fig = quick();
        let pi = fig.bar(SchemePoint::PiX8, 4 << 30).unwrap();
        let pic = fig.bar(SchemePoint::PicX32, 4 << 30).unwrap();
        assert!(
            pi.posmap_bytes_per_access > pic.posmap_bytes_per_access,
            "PI_X8 {} vs PIC_X32 {}",
            pi.posmap_bytes_per_access,
            pic.posmap_bytes_per_access
        );
    }

    #[test]
    fn data_portion_matches_tree_path_size() {
        // At 4 GB / 64 B / Z=4 a path read+write moves ~16 KB (25 levels of
        // 320-byte buckets, §3.2.1 / Figure 7).
        let fig = quick();
        let pc = fig.bar(SchemePoint::PcX32, 4 << 30).unwrap();
        assert!(
            pc.data_bytes_per_access > 10_000.0 && pc.data_bytes_per_access < 25_000.0,
            "data bytes per access {}",
            pc.data_bytes_per_access
        );
    }
}
