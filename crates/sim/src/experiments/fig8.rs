//! Figure 8: the comparison against the prior-art Recursive ORAM of Ren et
//! al. \[26\], under that paper's own parameters (4 DRAM channels, 2.6 GHz
//! core, 128-byte cache lines and ORAM blocks, Z = 3).
//!
//! Three design points are compared: the `R_X8` baseline, `PC_X64` (PLB +
//! compression at 128-byte blocks) and `PC_X32` (64-byte blocks).  The paper
//! reports both achieve ≈1.27× speedup over the baseline, with PC_X64
//! reducing PosMap traffic by 95 % and overall traffic by 37 %.

use crate::experiments::ExperimentScale;
use crate::report::{f2, format_table, kb};
use crate::runner::{geomean, run_benchmark, SimulationConfig};
use crate::scheme::SchemePoint;
use serde::{Deserialize, Serialize};
use trace_gen::SpecBenchmark;

/// One benchmark's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// The benchmark.
    pub benchmark: SpecBenchmark,
    /// `(scheme, slowdown, posmap KB/access, data KB/access)` per scheme.
    pub entries: Vec<(SchemePoint, f64, f64, f64)>,
}

/// The full figure (slowdowns on the left, data movement on the right).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One row per benchmark.
    pub rows: Vec<Fig8Row>,
    /// Geomean slowdown per scheme.
    pub geomeans: Vec<(SchemePoint, f64)>,
}

/// The schemes compared.
pub const SCHEMES: [SchemePoint; 3] = [SchemePoint::RX8, SchemePoint::PcX64, SchemePoint::PcX32];

fn config_for(scheme: SchemePoint, scale: ExperimentScale) -> SimulationConfig {
    let mut cfg = SimulationConfig {
        memory_accesses: scale.memory_accesses(),
        warmup_accesses: scale.warmup_accesses(),
        latency_samples: scale.latency_samples(),
        ..SimulationConfig::isca13_params()
    };
    // PC_X32 keeps 64-byte cache lines / ORAM blocks (§7.1.5).
    if scheme == SchemePoint::PcX32 {
        cfg.block_bytes = 64;
        cfg.z = 4;
    }
    cfg
}

/// Regenerates Figure 8.
pub fn run(scale: ExperimentScale) -> Fig8Result {
    let mut rows = Vec::new();
    for benchmark in scale.benchmarks() {
        let mut entries = Vec::new();
        for &scheme in SCHEMES.iter() {
            let cfg = config_for(scheme, scale);
            let run = run_benchmark(benchmark, scheme, &cfg);
            let (p, d) = run.bytes_per_access();
            entries.push((scheme, run.slowdown, p / 1024.0, d / 1024.0));
        }
        rows.push(Fig8Row { benchmark, entries });
    }
    let geomeans = SCHEMES
        .iter()
        .map(|&scheme| {
            let values: Vec<f64> = rows
                .iter()
                .map(|r| r.entries.iter().find(|(s, ..)| *s == scheme).unwrap().1)
                .collect();
            (scheme, geomean(&values))
        })
        .collect();
    Fig8Result { rows, geomeans }
}

impl Fig8Result {
    /// Geomean speedup of a PLB design point over the R_X8 baseline
    /// (paper: ≈1.27× for both PC_X64 and PC_X32).
    pub fn speedup_over_baseline(&self, scheme: SchemePoint) -> f64 {
        let get = |s: SchemePoint| self.geomeans.iter().find(|(x, _)| *x == s).unwrap().1;
        get(SchemePoint::RX8) / get(scheme)
    }

    /// Average PosMap-traffic reduction of PC_X64 over the baseline
    /// (paper: 95 %).
    pub fn posmap_reduction_pc_x64(&self) -> f64 {
        let avg = |scheme: SchemePoint| {
            let v: Vec<f64> = self
                .rows
                .iter()
                .map(|r| r.entries.iter().find(|(s, ..)| *s == scheme).unwrap().2)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        1.0 - avg(SchemePoint::PcX64) / avg(SchemePoint::RX8)
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let headers = [
            "bench",
            "R_X8",
            "PC_X64",
            "PC_X32",
            "R_X8 pm/dat KB",
            "PC_X64 pm/dat KB",
        ];
        let mut rows = Vec::new();
        for row in &self.rows {
            let get = |s: SchemePoint| row.entries.iter().find(|(x, ..)| *x == s).unwrap();
            let base = get(SchemePoint::RX8);
            let pc64 = get(SchemePoint::PcX64);
            let pc32 = get(SchemePoint::PcX32);
            rows.push(vec![
                row.benchmark.label().to_string(),
                f2(base.1),
                f2(pc64.1),
                f2(pc32.1),
                format!("{}/{}", kb(base.2 * 1024.0), kb(base.3 * 1024.0)),
                format!("{}/{}", kb(pc64.2 * 1024.0), kb(pc64.3 * 1024.0)),
            ]);
        }
        format!(
            "Figure 8: slowdowns and data movement under the parameters of [26]\n{}\n\
             PC_X64 speedup over R_X8 (geomean): {:.2}x (paper ~1.27x)\n\
             PC_X32 speedup over R_X8 (geomean): {:.2}x (paper ~1.27x)\n\
             PC_X64 PosMap-traffic reduction:    {:.0}%  (paper 95%)\n",
            format_table(&headers, &rows),
            self.speedup_over_baseline(SchemePoint::PcX64),
            self.speedup_over_baseline(SchemePoint::PcX32),
            self.posmap_reduction_pc_x64() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plb_designs_beat_the_baseline_under_isca13_parameters() {
        let result = run(ExperimentScale::Quick);
        assert!(result.speedup_over_baseline(SchemePoint::PcX64) > 1.02);
        assert!(result.speedup_over_baseline(SchemePoint::PcX32) > 1.02);
    }

    #[test]
    fn posmap_traffic_reduction_is_large() {
        let result = run(ExperimentScale::Quick);
        let reduction = result.posmap_reduction_pc_x64();
        assert!(
            reduction > 0.6,
            "PC_X64 should remove most PosMap traffic, got {reduction}"
        );
    }
}
