//! Figure 3: the percentage of bytes read from PosMap ORAMs in a full
//! Recursive ORAM access, as a function of Data ORAM capacity.
//!
//! This is the motivating figure of the paper: with small (64–128 byte)
//! blocks, 39–56 % of the bytes moved by a baseline Recursive ORAM belong to
//! PosMap ORAM lookups, and the fraction grows with capacity.  The figure is
//! purely analytic — it depends only on the tree geometries of the recursion
//! (X = 8, Z = 4, buckets padded to 512 bits, following \[26\]).

use crate::report::{f2, format_table};
use path_oram::OramParams;
use posmap::addressing::RecursionAddressing;
use serde::{Deserialize, Serialize};

/// One curve of Figure 3 (a block-size / on-chip-PosMap combination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fig3Series {
    /// Data ORAM block size in bytes (64 or 128).
    pub block_bytes: usize,
    /// On-chip PosMap budget in bytes (8 KB or 256 KB).
    pub onchip_posmap_bytes: usize,
}

impl Fig3Series {
    /// The series label used in the figure (e.g. `b64_pm8`).
    pub fn label(&self) -> String {
        format!(
            "b{}_pm{}",
            self.block_bytes,
            self.onchip_posmap_bytes / 1024
        )
    }
}

/// One point of one curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// log2 of the Data ORAM capacity in bytes (the x-axis, 30–40).
    pub log2_capacity: u32,
    /// Number of ORAMs in the recursion (H).
    pub num_levels: u32,
    /// Percentage of bytes moved that belong to PosMap ORAMs (the y-axis).
    pub posmap_percent: f64,
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// `(series, points)` pairs.
    pub series: Vec<(Fig3Series, Vec<Fig3Point>)>,
}

/// PosMap-ORAM block size following \[26\]: 32 bytes, i.e. X = 8 leaves.
pub const POSMAP_BLOCK_BYTES: usize = 32;
/// PosMap fan-out implied by 32-byte PosMap blocks.
pub const X: u64 = 8;

/// Computes the percentage of bytes from PosMap ORAMs for one configuration.
pub fn posmap_byte_percent(
    capacity_bytes: u64,
    block_bytes: usize,
    onchip_posmap_bytes: usize,
    z: usize,
) -> (u32, f64) {
    let num_blocks = capacity_bytes / block_bytes as u64;
    // On-chip PosMap entries are (uncompressed) leaves of ~4 bytes.
    let onchip_entries = (onchip_posmap_bytes / 4) as u64;
    let rec = RecursionAddressing::new(num_blocks, X, onchip_entries);
    let data_params = OramParams::new(num_blocks, block_bytes, z);
    let data_bytes = data_params.access_bytes();
    let mut posmap_bytes = 0u64;
    for level in 1..rec.num_levels() {
        let params = OramParams::new(rec.blocks_at_level(level), POSMAP_BLOCK_BYTES, z);
        posmap_bytes += params.access_bytes();
    }
    let percent = 100.0 * posmap_bytes as f64 / (posmap_bytes + data_bytes) as f64;
    (rec.num_levels(), percent)
}

/// Regenerates Figure 3.
pub fn run() -> Fig3Result {
    let series_defs = [
        Fig3Series {
            block_bytes: 64,
            onchip_posmap_bytes: 8 << 10,
        },
        Fig3Series {
            block_bytes: 128,
            onchip_posmap_bytes: 8 << 10,
        },
        Fig3Series {
            block_bytes: 64,
            onchip_posmap_bytes: 256 << 10,
        },
        Fig3Series {
            block_bytes: 128,
            onchip_posmap_bytes: 256 << 10,
        },
    ];
    let mut series = Vec::new();
    for def in series_defs {
        let mut points = Vec::new();
        for log2_capacity in 30..=40u32 {
            let (num_levels, posmap_percent) = posmap_byte_percent(
                1u64 << log2_capacity,
                def.block_bytes,
                def.onchip_posmap_bytes,
                4,
            );
            points.push(Fig3Point {
                log2_capacity,
                num_levels,
                posmap_percent,
            });
        }
        series.push((def, points));
    }
    Fig3Result { series }
}

impl Fig3Result {
    /// Renders the figure as a table (capacity rows × series columns).
    pub fn render(&self) -> String {
        let mut headers = vec!["log2(capacity)"];
        let labels: Vec<String> = self.series.iter().map(|(s, _)| s.label()).collect();
        for l in &labels {
            headers.push(l.as_str());
        }
        let mut rows = Vec::new();
        for (i, point) in self.series[0].1.iter().enumerate() {
            let mut row = vec![point.log2_capacity.to_string()];
            for (_, points) in &self.series {
                row.push(f2(points[i].posmap_percent));
            }
            rows.push(row);
        }
        format!(
            "Figure 3: % of bytes from PosMap ORAMs per Recursive ORAM access (X=8, Z=4)\n{}",
            format_table(&headers, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gig_64_byte_point_is_in_the_paper_range() {
        // Paper: at 4 GB, 39–56% of bandwidth is PosMap lookups depending on
        // block size.
        let (_, b64) = posmap_byte_percent(4 << 30, 64, 8 << 10, 4);
        let (_, b128) = posmap_byte_percent(4 << 30, 128, 8 << 10, 4);
        assert!(b64 > 40.0 && b64 < 70.0, "b64_pm8 at 4GB: {b64}");
        assert!(b128 > 30.0 && b128 < 60.0, "b128_pm8 at 4GB: {b128}");
        assert!(b64 > b128, "smaller blocks spend relatively more on PosMap");
    }

    #[test]
    fn percentage_grows_with_capacity() {
        let result = run();
        for (series, points) in &result.series {
            let first = points.first().unwrap().posmap_percent;
            let last = points.last().unwrap().posmap_percent;
            assert!(
                last > first,
                "{}: PosMap share must grow with capacity ({first} -> {last})",
                series.label()
            );
        }
    }

    #[test]
    fn bigger_onchip_posmap_only_slightly_dampens_the_effect() {
        let (_, pm8) = posmap_byte_percent(4 << 30, 64, 8 << 10, 4);
        let (_, pm256) = posmap_byte_percent(4 << 30, 64, 256 << 10, 4);
        assert!(pm256 < pm8);
        assert!(
            pm8 - pm256 < 20.0,
            "the dampening is modest: {pm8} vs {pm256}"
        );
    }

    #[test]
    fn kinks_appear_when_recursion_depth_increases() {
        let result = run();
        let (_, points) = &result.series[0];
        let depths: Vec<u32> = points.iter().map(|p| p.num_levels).collect();
        assert!(depths.windows(2).all(|w| w[1] >= w[0]));
        assert!(depths.last().unwrap() > depths.first().unwrap());
    }

    #[test]
    fn render_contains_all_series_labels() {
        let text = run().render();
        for label in ["b64_pm8", "b128_pm8", "b64_pm256", "b128_pm256"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
