//! Figure 6: slowdown relative to an insecure system for the baseline
//! Recursive ORAM (`R_X8`) and the paper's design points (`PC_X32`,
//! `PIC_X32`), per SPEC benchmark.
//!
//! The headline results: PC_X32 achieves a 1.43× speedup over R_X8 despite a
//! smaller on-chip PosMap, and adding integrity (PIC_X32) costs only ~7 %.

use crate::experiments::ExperimentScale;
use crate::report::{f2, format_table};
use crate::runner::{geomean, run_benchmark, BenchmarkRun, SimulationConfig};
use crate::scheme::SchemePoint;
use serde::{Deserialize, Serialize};
use trace_gen::SpecBenchmark;

/// The schemes compared in the figure.
pub const SCHEMES: [SchemePoint; 3] = [SchemePoint::RX8, SchemePoint::PcX32, SchemePoint::PicX32];

/// One benchmark's slowdowns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// The benchmark.
    pub benchmark: SpecBenchmark,
    /// `(scheme, slowdown)` pairs.
    pub slowdowns: Vec<(SchemePoint, f64)>,
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One row per benchmark.
    pub rows: Vec<Fig6Row>,
    /// Geometric-mean slowdown per scheme.
    pub geomeans: Vec<(SchemePoint, f64)>,
}

/// Regenerates Figure 6.
pub fn run(scale: ExperimentScale) -> Fig6Result {
    let cfg = SimulationConfig {
        memory_accesses: scale.memory_accesses(),
        warmup_accesses: scale.warmup_accesses(),
        latency_samples: scale.latency_samples(),
        ..SimulationConfig::paper_default()
    };
    let mut rows = Vec::new();
    for benchmark in scale.benchmarks() {
        let slowdowns: Vec<(SchemePoint, f64)> = SCHEMES
            .iter()
            .map(|&scheme| {
                let run: BenchmarkRun = run_benchmark(benchmark, scheme, &cfg);
                (scheme, run.slowdown)
            })
            .collect();
        rows.push(Fig6Row {
            benchmark,
            slowdowns,
        });
    }
    let geomeans = SCHEMES
        .iter()
        .map(|&scheme| {
            let values: Vec<f64> = rows
                .iter()
                .map(|r| r.slowdowns.iter().find(|(s, _)| *s == scheme).unwrap().1)
                .collect();
            (scheme, geomean(&values))
        })
        .collect();
    Fig6Result { rows, geomeans }
}

impl Fig6Result {
    /// Speedup of PC_X32 over the R_X8 baseline (geomean); the paper reports
    /// 1.43×.
    pub fn pc_speedup_over_baseline(&self) -> f64 {
        let get = |s: SchemePoint| self.geomeans.iter().find(|(x, _)| *x == s).unwrap().1;
        get(SchemePoint::RX8) / get(SchemePoint::PcX32)
    }

    /// Overhead of adding PMMAC integrity on top of PC_X32 (geomean); the
    /// paper reports ~7 %.
    pub fn integrity_overhead(&self) -> f64 {
        let get = |s: SchemePoint| self.geomeans.iter().find(|(x, _)| *x == s).unwrap().1;
        get(SchemePoint::PicX32) / get(SchemePoint::PcX32) - 1.0
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let headers = ["bench", "R_X8", "PC_X32", "PIC_X32"];
        let mut rows = Vec::new();
        for row in &self.rows {
            let mut cells = vec![row.benchmark.label().to_string()];
            for (_, v) in &row.slowdowns {
                cells.push(f2(*v));
            }
            rows.push(cells);
        }
        let mut avg = vec!["GeoMean".to_string()];
        for (_, v) in &self.geomeans {
            avg.push(f2(*v));
        }
        rows.push(avg);
        format!(
            "Figure 6: slowdown vs insecure DRAM (4 GB ORAM, 64 B blocks, 2 channels)\n{}\n\
             PC_X32 speedup over R_X8 (geomean): {:.2}x  (paper: 1.43x)\n\
             PIC_X32 overhead over PC_X32:        {:.1}%   (paper: 7%)\n",
            format_table(&headers, &rows),
            self.pc_speedup_over_baseline(),
            self.integrity_overhead() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plb_design_beats_baseline_and_integrity_is_cheap() {
        let result = run(ExperimentScale::Quick);
        let speedup = result.pc_speedup_over_baseline();
        assert!(
            speedup > 1.05,
            "PC_X32 should beat the recursive baseline, got {speedup}"
        );
        let overhead = result.integrity_overhead();
        assert!(
            (0.0..0.35).contains(&overhead),
            "integrity overhead {overhead} should be small"
        );
    }

    #[test]
    fn all_slowdowns_exceed_one() {
        let result = run(ExperimentScale::Quick);
        for row in &result.rows {
            for (scheme, slowdown) in &row.slowdowns {
                assert!(
                    *slowdown > 1.0,
                    "{:?}/{scheme:?} slowdown {slowdown}",
                    row.benchmark
                );
            }
        }
    }

    #[test]
    fn memory_bound_benchmarks_suffer_more() {
        let result = run(ExperimentScale::Quick);
        let slowdown_of = |b: SpecBenchmark| {
            result
                .rows
                .iter()
                .find(|r| r.benchmark == b)
                .map(|r| r.slowdowns[0].1)
                .unwrap()
        };
        assert!(slowdown_of(SpecBenchmark::Libquantum) > slowdown_of(SpecBenchmark::Sjeng));
    }
}
