//! §6.3: PMMAC's hash-bandwidth advantage over Merkle-tree integrity
//! verification.
//!
//! A Merkle scheme (\[25\]) must hash every block of the accessed path
//! (Z·(L+1) blocks) to check and update the root; PMMAC hashes only the
//! block of interest.  The paper quotes reductions of 68× for L = 16 and
//! 132× for L = 32 (Z = 4).  This driver reports both the analytic ratio and
//! a measured ratio from running the functional PIC controller.

use crate::report::{f2, format_table};
use freecursive::{Oram, OramBuilder, SchemePoint};
use path_oram::OramBackend as _;
use serde::{Deserialize, Serialize};

/// One row of the analytic comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HashBandwidthRow {
    /// Leaf level L of the ORAM tree.
    pub leaf_level: u32,
    /// Blocks a Merkle scheme hashes per access (Z·(L+1)).
    pub merkle_blocks_hashed: u64,
    /// Blocks PMMAC hashes per access (1).
    pub pmmac_blocks_hashed: u64,
    /// Reduction factor.
    pub reduction: f64,
}

/// The full result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HashBandwidthResult {
    /// Analytic rows for a range of tree depths.
    pub analytic: Vec<HashBandwidthRow>,
    /// Hash-reduction factor measured from a functional PIC_X32 run
    /// (includes PosMap-block and group-remap hashing).
    pub measured_reduction: f64,
    /// The leaf level of the functional instance the measurement came from.
    pub measured_leaf_level: u32,
}

/// Blocks hashed per access by a Merkle scheme for Z slots and leaf level L.
pub fn merkle_blocks_per_access(z: u64, leaf_level: u32) -> u64 {
    z * u64::from(leaf_level + 1)
}

/// Regenerates the comparison.  `functional_accesses` controls how many
/// accesses the measured (functional) part performs.
pub fn run(functional_accesses: u64) -> HashBandwidthResult {
    let analytic = (8..=32u32)
        .step_by(4)
        .map(|leaf_level| {
            let merkle = merkle_blocks_per_access(4, leaf_level);
            HashBandwidthRow {
                leaf_level,
                merkle_blocks_hashed: merkle,
                pmmac_blocks_hashed: 1,
                reduction: merkle as f64,
            }
        })
        .collect();

    // Functional measurement on a small PIC_X32 instance.
    let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(1 << 12)
        .block_bytes(64)
        .onchip_entries(64)
        .build_freecursive()
        .expect("functional ORAM");
    let leaf_level = oram.backend().params().leaf_level();
    for i in 0..functional_accesses {
        let addr = (i * 13) % (1 << 12);
        oram.read(addr).expect("read");
    }
    // The stats count both the check and the update hash for each side, so
    // the ratio is directly comparable to the analytic Z(L+1)/1.
    let measured_reduction = oram.stats().hash_reduction_factor().unwrap_or(0.0);
    HashBandwidthResult {
        analytic,
        measured_reduction,
        measured_leaf_level: leaf_level,
    }
}

impl HashBandwidthResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .analytic
            .iter()
            .map(|r| {
                vec![
                    r.leaf_level.to_string(),
                    r.merkle_blocks_hashed.to_string(),
                    r.pmmac_blocks_hashed.to_string(),
                    f2(r.reduction),
                ]
            })
            .collect();
        format!(
            "PMMAC hash-bandwidth reduction vs a Merkle tree (Z=4)\n{}\n\
             Paper: >=68x for L=16, 132x for L=32.\n\
             Measured on a functional PIC_X32 instance (L={}): {:.1}x\n\
             (the measured figure includes PosMap-block and group-remap hashing,\n\
              so it is somewhat below the per-access analytic bound)\n",
            format_table(
                &[
                    "L",
                    "Merkle blocks/access",
                    "PMMAC blocks/access",
                    "reduction"
                ],
                &rows
            ),
            self.measured_leaf_level,
            self.measured_reduction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_values_match_the_paper() {
        assert_eq!(merkle_blocks_per_access(4, 16), 68);
        assert_eq!(merkle_blocks_per_access(4, 32), 132);
    }

    #[test]
    fn measured_reduction_is_large() {
        let result = run(200);
        assert!(
            result.measured_reduction > 10.0,
            "measured reduction {}",
            result.measured_reduction
        );
        assert!(result.analytic.iter().any(|r| r.leaf_level == 16));
    }
}
