//! Ablation studies for the design choices the paper calls out in prose:
//!
//! * **PLB associativity** (§7.1.3): the paper reports that, at fixed
//!   capacity, a fully associative PLB improves performance by ≤10 % over
//!   direct-mapped, which is why the prototype is direct-mapped.
//! * **Subtree layout** (§7.1.1, from \[26\]): packing k-level subtrees
//!   contiguously is what lets a path read run near peak DRAM bandwidth; a
//!   naive level-order layout pays a row miss per bucket.
//! * **Unified tree + PLB vs. separate trees** (§4.1.3): the bandwidth view of
//!   the design decision, complementing the security argument.

use crate::experiments::ExperimentScale;
use crate::latency::OramLatencyModel;
use crate::report::{f2, format_table};
use crate::runner::{geomean, run_benchmark, SimulationConfig};
use crate::scheme::SchemePoint;
use dram_sim::{DramConfig, DramSim, SubtreeLayout};
use path_oram::OramParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// PLB associativity
// ---------------------------------------------------------------------------

/// Result of the PLB-associativity ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlbAssociativityResult {
    /// `(associativity, geomean slowdown)` pairs at fixed 64 KB capacity.
    pub points: Vec<(usize, f64)>,
}

/// Sweeps PLB associativity at fixed capacity (64 KB) for the PC_X32 design.
pub fn plb_associativity(scale: ExperimentScale) -> PlbAssociativityResult {
    let mut points = Vec::new();
    for assoc in [1usize, 2, 4, 16] {
        let mut slowdowns = Vec::new();
        for benchmark in scale.benchmarks() {
            let cfg = SimulationConfig {
                plb_associativity: assoc,
                memory_accesses: scale.memory_accesses(),
                warmup_accesses: scale.warmup_accesses(),
                latency_samples: scale.latency_samples(),
                ..SimulationConfig::paper_default()
            };
            slowdowns.push(run_benchmark(benchmark, SchemePoint::PcX32, &cfg).slowdown);
        }
        points.push((assoc, geomean(&slowdowns)));
    }
    PlbAssociativityResult { points }
}

impl PlbAssociativityResult {
    /// Improvement of the most associative point over direct-mapped.
    pub fn max_improvement(&self) -> f64 {
        let dm = self.points.first().map(|(_, s)| *s).unwrap_or(1.0);
        let best = self
            .points
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min);
        1.0 - best / dm
    }

    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(a, s)| vec![a.to_string(), f2(*s)])
            .collect();
        format!(
            "Ablation: PLB associativity at 64 KB capacity (PC_X32)\n{}\n\
             best improvement over direct-mapped: {:.1}% (paper: <=10%)\n",
            format_table(&["associativity", "geomean slowdown"], &rows),
            self.max_improvement() * 100.0
        )
    }
}

// ---------------------------------------------------------------------------
// Subtree layout vs naive level-order layout
// ---------------------------------------------------------------------------

/// Result of the DRAM-layout ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayoutAblationResult {
    /// Average path read+write latency with the subtree layout (CPU cycles).
    pub subtree_cycles: u64,
    /// Average latency with a naive level-order layout (CPU cycles).
    pub naive_cycles: u64,
    /// DRAM row-buffer hit rate under the subtree layout.
    pub subtree_row_hit_rate: f64,
    /// DRAM row-buffer hit rate under the naive layout.
    pub naive_row_hit_rate: f64,
}

/// Measures the latency of a full path access under both layouts.
pub fn layout_ablation(samples: usize) -> LayoutAblationResult {
    let params = OramParams::new(1 << 26, 64, 4);
    let dram_cfg = DramConfig::default();
    // Subtree layout: measured by the calibrated latency model.
    let model = OramLatencyModel::new(params, dram_cfg.clone(), samples);
    let subtree_cycles = model.tree_latency_cycles();

    // Naive layout: replay paths bucket-by-bucket at level-order addresses.
    let layout = SubtreeLayout::new(params.levels(), params.bucket_bytes() as u64, 4, 0);
    let mut rng = StdRng::seed_from_u64(0xAB1A7E);
    let mut total = 0u64;
    let mut naive_hits = 0.0;
    let mut subtree_hits = 0.0;
    for _ in 0..samples.max(1) {
        let leaf = rng.gen_range(0..params.num_leaves());

        let mut dram = DramSim::new(dram_cfg.clone());
        let mut done = 0u64;
        let mut now = 0u64;
        for pass in 0..2 {
            for level in 0..params.levels() {
                let index = leaf >> (params.leaf_level() - level);
                let addr = layout.naive_bucket_address(level, index);
                done = done.max(dram.access(addr, params.bucket_bytes(), pass == 1, now));
            }
            now = done;
        }
        total += dram_cfg.dram_to_cpu_cycles(done);
        naive_hits += dram.stats().row_hit_rate().unwrap_or(0.0);

        let mut dram = DramSim::new(dram_cfg.clone());
        let mut done = 0u64;
        let mut now = 0u64;
        for pass in 0..2 {
            for addr in layout.path_addresses(leaf) {
                done = done.max(dram.access(addr, params.bucket_bytes(), pass == 1, now));
            }
            now = done;
        }
        subtree_hits += dram.stats().row_hit_rate().unwrap_or(0.0);
    }
    LayoutAblationResult {
        subtree_cycles,
        naive_cycles: total / samples.max(1) as u64,
        subtree_row_hit_rate: subtree_hits / samples.max(1) as f64,
        naive_row_hit_rate: naive_hits / samples.max(1) as f64,
    }
}

impl LayoutAblationResult {
    /// Latency penalty of the naive layout.
    pub fn naive_penalty(&self) -> f64 {
        self.naive_cycles as f64 / self.subtree_cycles as f64
    }

    /// Renders the ablation.
    pub fn render(&self) -> String {
        format!(
            "Ablation: ORAM tree layout in DRAM (4 GB ORAM, 2 channels)\n\
             subtree layout : {} cycles/access, row-hit rate {:.2}\n\
             naive layout   : {} cycles/access, row-hit rate {:.2}\n\
             naive / subtree: {:.2}x\n",
            self.subtree_cycles,
            self.subtree_row_hit_rate,
            self.naive_cycles,
            self.naive_row_hit_rate,
            self.naive_penalty()
        )
    }
}

// ---------------------------------------------------------------------------
// Unified tree + PLB vs separate trees (bandwidth view)
// ---------------------------------------------------------------------------

/// Result of the unified-vs-separate ablation: PosMap bytes per access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifiedTreeAblationResult {
    /// `(scheme label, posmap KB per access, total KB per access)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Compares the separate-tree baseline against PLB designs with increasing X.
pub fn unified_tree_ablation(scale: ExperimentScale) -> UnifiedTreeAblationResult {
    let schemes = [SchemePoint::RX8, SchemePoint::PX16, SchemePoint::PcX32];
    let mut rows = Vec::new();
    for scheme in schemes {
        let mut posmap = 0.0;
        let mut total = 0.0;
        let benchmarks = scale.benchmarks();
        for &benchmark in &benchmarks {
            let cfg = SimulationConfig {
                memory_accesses: scale.memory_accesses(),
                warmup_accesses: scale.warmup_accesses(),
                latency_samples: scale.latency_samples(),
                ..SimulationConfig::paper_default()
            };
            let run = run_benchmark(benchmark, scheme, &cfg);
            let (p, d) = run.bytes_per_access();
            posmap += p / 1024.0;
            total += (p + d) / 1024.0;
        }
        let n = benchmarks.len() as f64;
        rows.push((scheme.label().to_string(), posmap / n, total / n));
    }
    UnifiedTreeAblationResult { rows }
}

impl UnifiedTreeAblationResult {
    /// Renders the ablation.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(l, p, t)| vec![l.clone(), f2(*p), f2(*t)])
            .collect();
        format!(
            "Ablation: separate PosMap ORAM trees (R_X8) vs unified tree + PLB\n{}",
            format_table(&["scheme", "posmap KB/access", "total KB/access"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_helps_only_modestly() {
        let result = plb_associativity(ExperimentScale::Quick);
        assert_eq!(result.points.len(), 4);
        let improvement = result.max_improvement();
        assert!(
            (-0.02..0.15).contains(&improvement),
            "associativity improvement {improvement} should be modest (paper: <=10%)"
        );
    }

    #[test]
    fn subtree_layout_beats_naive_layout() {
        let result = layout_ablation(10);
        assert!(
            result.naive_cycles > result.subtree_cycles,
            "naive {} vs subtree {}",
            result.naive_cycles,
            result.subtree_cycles
        );
        assert!(result.subtree_row_hit_rate > result.naive_row_hit_rate);
    }

    #[test]
    fn unified_tree_reduces_posmap_traffic_monotonically_in_x() {
        let result = unified_tree_ablation(ExperimentScale::Quick);
        assert_eq!(result.rows.len(), 3);
        // R_X8 > P_X16 > PC_X32 in PosMap traffic.
        assert!(result.rows[0].1 > result.rows[1].1);
        assert!(result.rows[1].1 > result.rows[2].1);
    }
}
