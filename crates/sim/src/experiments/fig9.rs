//! Figure 9: speedup of PC_X32 over a Phantom-style \[21\] configuration that
//! avoids recursion by using 4 KB ORAM blocks and an entirely on-chip PosMap.
//!
//! The paper reports a ~10× average speedup: a 64-byte-block recursive design
//! moves ~2 % of the bytes Phantom moves per access, which outweighs the
//! extra PosMap-block accesses.

use crate::experiments::ExperimentScale;
use crate::report::{f2, format_table};
use crate::runner::{geomean, run_benchmark, SimulationConfig};
use crate::scheme::SchemePoint;
use serde::{Deserialize, Serialize};
use trace_gen::SpecBenchmark;

/// One benchmark's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// The benchmark.
    pub benchmark: SpecBenchmark,
    /// Slowdown of the Phantom-style configuration vs insecure.
    pub phantom_slowdown: f64,
    /// Slowdown of PC_X32 vs insecure.
    pub pc_x32_slowdown: f64,
    /// Speedup of PC_X32 over Phantom (the y-axis of the figure, log scale).
    pub speedup: f64,
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// One row per benchmark.
    pub rows: Vec<Fig9Row>,
    /// Geometric-mean speedup (paper: ~10×).
    pub geomean_speedup: f64,
}

/// Regenerates Figure 9.
pub fn run(scale: ExperimentScale) -> Fig9Result {
    // Phantom is modelled with its own 128-byte processor cache lines
    // (§7.1.6); PC_X32 uses the Table 1 configuration.
    let phantom_cfg = SimulationConfig {
        block_bytes: 128,
        memory_accesses: scale.memory_accesses(),
        warmup_accesses: scale.warmup_accesses(),
        latency_samples: scale.latency_samples(),
        ..SimulationConfig::paper_default()
    };
    let pc_cfg = SimulationConfig {
        memory_accesses: scale.memory_accesses(),
        warmup_accesses: scale.warmup_accesses(),
        latency_samples: scale.latency_samples(),
        ..SimulationConfig::paper_default()
    };
    let mut rows = Vec::new();
    for benchmark in scale.benchmarks() {
        let phantom = run_benchmark(benchmark, SchemePoint::Phantom4K, &phantom_cfg);
        let pc = run_benchmark(benchmark, SchemePoint::PcX32, &pc_cfg);
        rows.push(Fig9Row {
            benchmark,
            phantom_slowdown: phantom.slowdown,
            pc_x32_slowdown: pc.slowdown,
            speedup: phantom.slowdown / pc.slowdown,
        });
    }
    let geomean_speedup = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    Fig9Result {
        rows,
        geomean_speedup,
    }
}

impl Fig9Result {
    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let headers = [
            "bench",
            "Phantom-4KB slowdown",
            "PC_X32 slowdown",
            "speedup",
        ];
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.label().to_string(),
                    f2(r.phantom_slowdown),
                    f2(r.pc_x32_slowdown),
                    f2(r.speedup),
                ]
            })
            .collect();
        rows.push(vec![
            "GeoMean".into(),
            String::new(),
            String::new(),
            f2(self.geomean_speedup),
        ]);
        format!(
            "Figure 9: PC_X32 speedup over a Phantom-style 4 KB-block ORAM (paper: ~10x geomean)\n{}",
            format_table(&headers, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_x32_is_much_faster_than_phantom_with_4kb_blocks() {
        let result = run(ExperimentScale::Quick);
        assert!(
            result.geomean_speedup > 2.0,
            "geomean speedup {} should be large (paper: ~10x)",
            result.geomean_speedup
        );
        // Most benchmarks must favour PC_X32 by a wide margin.  A purely
        // streaming benchmark (libquantum) can amortise Phantom's 4 KB blocks
        // across consecutive misses and come out near break-even, so we do
        // not require every single row to exceed 1.
        let winners = result.rows.iter().filter(|r| r.speedup > 1.5).count();
        assert!(
            winners * 3 >= result.rows.len() * 2,
            "at least two thirds of benchmarks should strongly favour PC_X32: {:?}",
            result.rows
        );
    }
}
