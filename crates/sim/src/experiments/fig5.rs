//! Figure 5: the PLB design space — runtime for 8/32/64/128 KB direct-mapped
//! PLBs, normalised to the 8 KB point, per SPEC benchmark.
//!
//! The paper finds that most benchmarks gain ≤10 % from a larger PLB, while
//! `bzip2` and `mcf` (whose pointer-heavy working sets cover more PosMap
//! blocks than an 8 KB PLB can hold) gain 67 % and 49 % respectively, and
//! settles on a 64 KB direct-mapped PLB.

use crate::experiments::ExperimentScale;
use crate::report::{f2, format_table};
use crate::runner::{run_benchmark, SimulationConfig};
use crate::scheme::SchemePoint;
use serde::{Deserialize, Serialize};
use trace_gen::SpecBenchmark;

/// The PLB capacities swept in the figure.
pub const PLB_CAPACITIES: [usize; 4] = [8 << 10, 32 << 10, 64 << 10, 128 << 10];

/// One benchmark's sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// The benchmark.
    pub benchmark: SpecBenchmark,
    /// `(plb_bytes, runtime_normalised_to_8kb)` pairs.
    pub normalised_runtime: Vec<(usize, f64)>,
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// One row per benchmark plus the average.
    pub rows: Vec<Fig5Row>,
}

/// Regenerates Figure 5.
pub fn run(scale: ExperimentScale) -> Fig5Result {
    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; PLB_CAPACITIES.len()];
    let benchmarks = scale.benchmarks();
    for &benchmark in &benchmarks {
        let mut cycles = Vec::new();
        for &plb in PLB_CAPACITIES.iter() {
            let cfg = SimulationConfig {
                plb_capacity_bytes: plb,
                memory_accesses: scale.memory_accesses(),
                warmup_accesses: scale.warmup_accesses(),
                latency_samples: scale.latency_samples(),
                ..SimulationConfig::paper_default()
            };
            let run = run_benchmark(benchmark, SchemePoint::PcX32, &cfg);
            cycles.push(run.result.total_cycles as f64);
        }
        let base = cycles[0];
        let normalised: Vec<(usize, f64)> = PLB_CAPACITIES
            .iter()
            .zip(cycles.iter())
            .map(|(&plb, &c)| (plb, c / base))
            .collect();
        for (i, (_, v)) in normalised.iter().enumerate() {
            sums[i] += v;
        }
        rows.push(Fig5Row {
            benchmark,
            normalised_runtime: normalised,
        });
    }
    Fig5Result { rows }
}

impl Fig5Result {
    /// Renders the figure as a table (benchmarks × PLB sizes).
    pub fn render(&self) -> String {
        let headers = ["bench", "8KB", "32KB", "64KB", "128KB"];
        let mut rows = Vec::new();
        let mut sums = vec![0.0f64; PLB_CAPACITIES.len()];
        for row in &self.rows {
            let mut cells = vec![row.benchmark.label().to_string()];
            for (i, (_, v)) in row.normalised_runtime.iter().enumerate() {
                sums[i] += v;
                cells.push(f2(*v));
            }
            rows.push(cells);
        }
        let n = self.rows.len() as f64;
        let mut avg = vec!["Avg".to_string()];
        for s in &sums {
            avg.push(f2(s / n));
        }
        rows.push(avg);
        format!(
            "Figure 5: runtime vs PLB capacity, normalised to the 8 KB PLB (PC_X32)\n{}",
            format_table(&headers, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_plbs_never_hurt_much_and_help_plb_sensitive_benchmarks() {
        let result = run(ExperimentScale::Quick);
        for row in &result.rows {
            let base = row.normalised_runtime[0].1;
            assert!((base - 1.0).abs() < 1e-9);
            for (_, v) in &row.normalised_runtime {
                assert!(*v <= 1.05, "{:?}: {v}", row.benchmark);
            }
        }
        // bzip2 is the PLB-capacity-sensitive benchmark in the quick set: its
        // 128 KB point must improve on 8 KB more than sjeng's does.
        let gain = |b: SpecBenchmark| {
            result
                .rows
                .iter()
                .find(|r| r.benchmark == b)
                .map(|r| 1.0 - r.normalised_runtime.last().unwrap().1)
                .unwrap()
        };
        assert!(
            gain(SpecBenchmark::Bzip2) >= gain(SpecBenchmark::Sjeng),
            "bzip2 {} vs sjeng {}",
            gain(SpecBenchmark::Bzip2),
            gain(SpecBenchmark::Sjeng)
        );
    }

    #[test]
    fn render_lists_all_capacities() {
        let text = run(ExperimentScale::Quick).render();
        for cap in ["8KB", "32KB", "64KB", "128KB", "Avg"] {
            assert!(text.contains(cap));
        }
    }
}
