//! A timing model of the Phantom \[21\] design point used in Figure 9: a
//! non-recursive Path ORAM with 4 KB blocks, the whole PosMap on chip, and a
//! small on-chip *block buffer* that caches recently fetched 4 KB ORAM blocks
//! (Section 5.7 of the Phantom paper; 32 KB with CLOCK eviction).

use crate::latency::OramLatencyModel;
use cache_sim::MainMemory;
use dram_sim::DramConfig;
use path_oram::OramParams;
use serde::{Deserialize, Serialize};

/// Configuration of the Phantom comparison point (§7.1.6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhantomConfig {
    /// ORAM block size in bytes (4 KB in the paper's comparison).
    pub block_bytes: usize,
    /// Number of blocks (2^20 for the 4 GB ORAM).
    pub num_blocks: u64,
    /// Tree leaf level (19 in the comparison).
    pub leaf_level: u32,
    /// Slots per bucket.
    pub z: usize,
    /// Block-buffer capacity in bytes (32 KB).
    pub block_buffer_bytes: usize,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Latency calibration samples.
    pub latency_samples: usize,
}

impl Default for PhantomConfig {
    fn default() -> Self {
        Self {
            block_bytes: 4096,
            num_blocks: 1 << 20,
            leaf_level: 19,
            z: 4,
            block_buffer_bytes: 32 << 10,
            dram: DramConfig::default(),
            latency_samples: 20,
        }
    }
}

/// Statistics of a Phantom timing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhantomStats {
    /// LLC-side requests served.
    pub requests: u64,
    /// Requests satisfied by the block buffer.
    pub buffer_hits: u64,
    /// Full ORAM tree accesses performed.
    pub oram_accesses: u64,
    /// Bytes moved to/from DRAM.
    pub bytes_moved: u64,
    /// Cycles spent in the ORAM.
    pub cycles: u64,
}

/// The Phantom timing model: every block-buffer miss costs one 4 KB-block
/// path access.
#[derive(Debug)]
pub struct PhantomOram {
    config: PhantomConfig,
    latency: OramLatencyModel,
    /// Block addresses resident in the block buffer, in CLOCK/FIFO order
    /// (CLOCK over a handful of entries behaves like FIFO-with-second-chance;
    /// FIFO is a faithful simplification at 8 entries).
    buffer: Vec<u64>,
    buffer_entries: usize,
    stats: PhantomStats,
}

impl PhantomOram {
    /// Builds the model, calibrating the 4 KB-block path latency.
    pub fn new(config: PhantomConfig) -> Self {
        let params = OramParams::new(config.num_blocks, config.block_bytes, config.z)
            .with_leaf_level(config.leaf_level);
        let latency = OramLatencyModel::new(params, config.dram.clone(), config.latency_samples);
        let buffer_entries = (config.block_buffer_bytes / config.block_bytes).max(1);
        Self {
            config,
            latency,
            buffer: Vec::new(),
            buffer_entries,
            stats: PhantomStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PhantomConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PhantomStats {
        &self.stats
    }

    /// Resets statistics (block-buffer contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = PhantomStats::default();
    }

    /// Average latency of one 4 KB-block ORAM access in CPU cycles.
    pub fn access_latency_cycles(&self) -> u64 {
        self.latency.backend_access_cycles(false)
    }

    /// Serves a request for the ORAM block containing `block_addr`.
    pub fn access(&mut self, block_addr: u64) -> u64 {
        let block_addr = block_addr % self.config.num_blocks;
        self.stats.requests += 1;
        if let Some(pos) = self.buffer.iter().position(|&b| b == block_addr) {
            // CLOCK second chance approximated by moving the hit to the back.
            let b = self.buffer.remove(pos);
            self.buffer.push(b);
            self.stats.buffer_hits += 1;
            return 0;
        }
        if self.buffer.len() == self.buffer_entries {
            self.buffer.remove(0);
        }
        self.buffer.push(block_addr);
        self.stats.oram_accesses += 1;
        self.stats.bytes_moved += self.latency.params().access_bytes();
        let cycles = self.access_latency_cycles();
        self.stats.cycles += cycles;
        cycles
    }
}

/// Adapter exposing [`PhantomOram`] as the processor's main memory.
#[derive(Debug)]
pub struct PhantomMemory {
    oram: PhantomOram,
    block_bytes: u64,
}

impl PhantomMemory {
    /// Wraps a Phantom model.
    pub fn new(oram: PhantomOram) -> Self {
        let block_bytes = oram.config().block_bytes as u64;
        Self { oram, block_bytes }
    }

    /// The wrapped model.
    pub fn oram(&self) -> &PhantomOram {
        &self.oram
    }

    /// Resets the wrapped model's statistics.
    pub fn reset_stats(&mut self) {
        self.oram.reset_stats();
    }
}

impl MainMemory for PhantomMemory {
    fn access(&mut self, line_addr: u64, _is_write: bool) -> u64 {
        self.oram.access(line_addr / self.block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PhantomConfig {
        PhantomConfig {
            latency_samples: 3,
            ..PhantomConfig::default()
        }
    }

    #[test]
    fn access_latency_reflects_4kb_blocks() {
        let oram = PhantomOram::new(quick());
        // 20 levels of ~16.5 KB buckets read+written: hundreds of KB per
        // access, i.e. tens of thousands of CPU cycles at ~21 GB/s.
        let cycles = oram.access_latency_cycles();
        assert!(cycles > 20_000, "Phantom access only took {cycles} cycles");
    }

    #[test]
    fn block_buffer_captures_spatial_locality() {
        let mut oram = PhantomOram::new(quick());
        // 64 consecutive 64-byte lines live in one 4 KB ORAM block.
        for line in 0..256u64 {
            let block = line * 64 / 4096;
            oram.access(block);
        }
        let stats = oram.stats();
        assert_eq!(stats.requests, 256);
        assert!(stats.buffer_hits > 200, "hits {}", stats.buffer_hits);
        assert!(stats.oram_accesses <= 8);
    }

    #[test]
    fn buffer_is_bounded() {
        let mut oram = PhantomOram::new(quick());
        for block in 0..100u64 {
            oram.access(block * 7919);
        }
        assert!(oram.buffer.len() <= oram.buffer_entries);
        assert_eq!(oram.stats().oram_accesses, 100);
    }

    #[test]
    fn memory_adapter_translates_addresses() {
        let mut mem = PhantomMemory::new(PhantomOram::new(quick()));
        cache_sim::MainMemory::access(&mut mem, 0, false);
        cache_sim::MainMemory::access(&mut mem, 64, false);
        // Same 4 KB block: the second access hits the block buffer.
        assert_eq!(mem.oram().stats().oram_accesses, 1);
        assert_eq!(mem.oram().stats().buffer_hits, 1);
    }
}
