//! Address-only (timing) models of the ORAM frontends, scalable to the
//! paper's 4–64 GB capacities.
//!
//! The models track exactly the state that determines cost — the PLB contents
//! and the recursion addressing — and charge each backend access the average
//! latency calibrated by [`crate::latency::OramLatencyModel`].  Group-remap
//! overhead (§5.2.2) is at most X/2^β = 0.2% of accesses for the compressed
//! format and is ignored here (the functional frontend models it exactly).

use crate::latency::OramLatencyModel;
use crate::scheme::SchemePoint;
use cache_sim::MainMemory;
use dram_sim::DramConfig;
use path_oram::OramParams;
use posmap::addressing::RecursionAddressing;
use posmap::{Plb, PlbEntry};
use serde::{Deserialize, Serialize};

/// Configuration of a timing-model ORAM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingOramConfig {
    /// Which design point to model.
    pub scheme: SchemePoint,
    /// Logical data capacity in bytes (e.g. 4 GiB).
    pub data_capacity_bytes: u64,
    /// ORAM block size in bytes (the LLC line size in Figures 5–8).
    pub block_bytes: usize,
    /// Slots per bucket (Z).
    pub z: usize,
    /// PLB capacity in bytes.
    pub plb_capacity_bytes: usize,
    /// PLB associativity (1 = direct mapped).
    pub plb_associativity: usize,
    /// On-chip PosMap capacity in bytes.
    pub onchip_posmap_bytes: usize,
    /// DRAM configuration (channel count etc.).
    pub dram: DramConfig,
    /// Random-path samples used to calibrate each tree's average latency.
    pub latency_samples: usize,
}

impl TimingOramConfig {
    /// The paper's default configuration (Table 1): 4 GB ORAM of 64-byte
    /// blocks, Z = 4, 64 KB direct-mapped PLB, 8 KB on-chip PosMap, 2 DRAM
    /// channels.
    pub fn paper_default(scheme: SchemePoint) -> Self {
        Self {
            scheme,
            data_capacity_bytes: 4 << 30,
            block_bytes: 64,
            z: 4,
            plb_capacity_bytes: 64 << 10,
            plb_associativity: 1,
            onchip_posmap_bytes: 8 << 10,
            dram: DramConfig::default(),
            latency_samples: 50,
        }
    }

    /// Number of data blocks.
    pub fn num_blocks(&self) -> u64 {
        self.data_capacity_bytes / self.block_bytes as u64
    }

    /// On-chip PosMap capacity in entries: 8-byte counters under PMMAC,
    /// 4-byte leaves for the PLB designs, and tightly bit-packed (~2-byte)
    /// leaves for the R_X8 baseline, matching the paper's generosity toward
    /// the baseline's large on-chip PosMap (§7.1.4).
    pub fn onchip_entries(&self) -> u64 {
        let entry = if self.scheme.pmmac() {
            8
        } else if self.scheme == SchemePoint::RX8 {
            2
        } else {
            4
        };
        (self.onchip_posmap_bytes as u64 / entry).max(1)
    }
}

/// Cost of one frontend request, in whatever the caller accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCost {
    /// Total latency in processor cycles.
    pub cycles: u64,
    /// Backend accesses made for PosMap blocks.
    pub posmap_accesses: u64,
    /// Backend accesses made for the data block.
    pub data_accesses: u64,
    /// Bytes moved for PosMap accesses.
    pub posmap_bytes: u64,
    /// Bytes moved for the data access.
    pub data_bytes: u64,
}

/// Aggregate traffic statistics of a timing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Frontend requests served (LLC misses + evictions).
    pub requests: u64,
    /// Total PosMap backend accesses.
    pub posmap_accesses: u64,
    /// Total data backend accesses.
    pub data_accesses: u64,
    /// Total PosMap bytes moved.
    pub posmap_bytes: u64,
    /// Total data bytes moved.
    pub data_bytes: u64,
    /// Total cycles spent in the ORAM.
    pub cycles: u64,
}

impl TrafficStats {
    /// Average bytes moved per request (the y-axis of Figure 7), split as
    /// `(posmap, data)`.
    pub fn bytes_per_request(&self) -> (f64, f64) {
        if self.requests == 0 {
            (0.0, 0.0)
        } else {
            (
                self.posmap_bytes as f64 / self.requests as f64,
                self.data_bytes as f64 / self.requests as f64,
            )
        }
    }

    /// Fraction of moved bytes that belong to PosMap management.
    pub fn posmap_fraction(&self) -> f64 {
        let total = self.posmap_bytes + self.data_bytes;
        if total == 0 {
            0.0
        } else {
            self.posmap_bytes as f64 / total as f64
        }
    }
}

/// Per-recursion-level geometry for the baseline separate-tree design.
#[derive(Debug, Clone)]
struct BaselineLevel {
    latency: OramLatencyModel,
    access_bytes: u64,
}

/// The timing model of one ORAM design point.
#[derive(Debug)]
pub struct TimingOram {
    config: TimingOramConfig,
    rec: RecursionAddressing,
    /// PLB of address-only entries (None for the baseline design).
    plb: Option<Plb<()>>,
    /// Latency/byte model of the unified tree (PLB designs) or the Data ORAM
    /// (baseline).
    data_latency: OramLatencyModel,
    /// Latency/byte models of the separate PosMap ORAMs (baseline only),
    /// indexed by recursion level (entry 0 unused).
    baseline_levels: Vec<BaselineLevel>,
    stats: TrafficStats,
}

impl TimingOram {
    /// Builds the timing model, calibrating DRAM latencies for every tree.
    ///
    /// # Panics
    ///
    /// Panics if called for [`SchemePoint::Insecure`] or
    /// [`SchemePoint::Phantom4K`] (those are modelled elsewhere).
    pub fn new(config: TimingOramConfig) -> Self {
        assert!(
            !matches!(
                config.scheme,
                SchemePoint::Insecure | SchemePoint::Phantom4K
            ),
            "use FlatLatencyMemory / PhantomOram for this scheme"
        );
        let x = config.scheme.x(config.block_bytes);
        let rec = RecursionAddressing::new(config.num_blocks(), x, config.onchip_entries());

        if config.scheme.uses_plb() {
            let payload = config.scheme.payload_bytes(config.block_bytes);
            let params = OramParams::new(rec.unified_total_blocks(), payload, config.z);
            let data_latency =
                OramLatencyModel::new(params, config.dram.clone(), config.latency_samples);
            let plb_blocks =
                (config.plb_capacity_bytes / config.block_bytes).max(config.plb_associativity * 4);
            let plb = Plb::new(
                plb_blocks - plb_blocks % config.plb_associativity,
                config.plb_associativity,
            );
            Self {
                config,
                rec,
                plb: Some(plb),
                data_latency,
                baseline_levels: Vec::new(),
                stats: TrafficStats::default(),
            }
        } else {
            // Baseline: one tree per level.
            let data_params = OramParams::new(rec.blocks_at_level(0), config.block_bytes, config.z);
            let data_latency =
                OramLatencyModel::new(data_params, config.dram.clone(), config.latency_samples);
            let mut baseline_levels = Vec::new();
            for level in 0..rec.num_levels() {
                let block_bytes = if level == 0 {
                    config.block_bytes
                } else {
                    config.scheme.posmap_block_bytes(config.block_bytes)
                };
                let params = OramParams::new(rec.blocks_at_level(level), block_bytes, config.z);
                let latency =
                    OramLatencyModel::new(params, config.dram.clone(), config.latency_samples);
                let access_bytes = latency.params().access_bytes();
                baseline_levels.push(BaselineLevel {
                    latency,
                    access_bytes,
                });
            }
            Self {
                config,
                rec,
                plb: None,
                data_latency,
                baseline_levels,
                stats: TrafficStats::default(),
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TimingOramConfig {
        &self.config
    }

    /// The recursion addressing (H, X, per-level block counts).
    pub fn addressing(&self) -> &RecursionAddressing {
        &self.rec
    }

    /// Latency model of the unified tree / Data ORAM.
    pub fn data_latency(&self) -> &OramLatencyModel {
        &self.data_latency
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets statistics (PLB contents are retained, as in a long-running
    /// system).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }

    /// Serves one frontend request for data block `block_addr`.
    pub fn access(&mut self, block_addr: u64) -> AccessCost {
        let block_addr = block_addr % self.config.num_blocks().max(1);
        let h = self.rec.num_levels();
        let pmmac = self.config.scheme.pmmac();
        let mut cost = AccessCost::default();

        if let Some(plb) = &mut self.plb {
            // PLB design: probe for the parent of each level starting at the
            // data level (§4.2.4 step 1).
            let mut start_level = h - 1;
            for i in 0..h - 1 {
                let parent = self.rec.unified_addr(i + 1, block_addr);
                if plb.lookup(parent).is_some() {
                    start_level = i;
                    break;
                }
            }
            let access_bytes = self.data_latency.params().access_bytes();
            let backend_cycles = self.data_latency.backend_access_cycles(pmmac);
            // PosMap fetches for levels start_level .. 1.
            for level in (1..=start_level).rev() {
                let unified = self.rec.unified_addr(level, block_addr);
                plb.insert(PlbEntry {
                    unified_addr: unified,
                    leaf: 0,
                    payload: (),
                });
                cost.posmap_accesses += 1;
                cost.posmap_bytes += access_bytes;
                cost.cycles += backend_cycles + self.data_latency.frontend_cycles();
            }
            // The data access itself.
            cost.data_accesses = 1;
            cost.data_bytes = access_bytes;
            cost.cycles += backend_cycles;
        } else {
            // Baseline: every level, every time.
            for level in (1..h).rev() {
                let lvl = &self.baseline_levels[level as usize];
                cost.posmap_accesses += 1;
                cost.posmap_bytes += lvl.access_bytes;
                cost.cycles += lvl.latency.backend_access_cycles(pmmac);
            }
            let data = &self.baseline_levels[0];
            cost.data_accesses = 1;
            cost.data_bytes = data.access_bytes;
            cost.cycles += data.latency.backend_access_cycles(pmmac);
        }

        self.stats.requests += 1;
        self.stats.posmap_accesses += cost.posmap_accesses;
        self.stats.data_accesses += cost.data_accesses;
        self.stats.posmap_bytes += cost.posmap_bytes;
        self.stats.data_bytes += cost.data_bytes;
        self.stats.cycles += cost.cycles;
        cost
    }
}

/// Adapter exposing a [`TimingOram`] as the processor's main memory.
#[derive(Debug)]
pub struct OramMemory {
    oram: TimingOram,
    block_bytes: u64,
}

impl OramMemory {
    /// Wraps a timing ORAM; `block_bytes` is the ORAM block size used to
    /// translate byte addresses into block addresses.
    pub fn new(oram: TimingOram) -> Self {
        let block_bytes = oram.config().block_bytes as u64;
        Self { oram, block_bytes }
    }

    /// The wrapped ORAM (for statistics).
    pub fn oram(&self) -> &TimingOram {
        &self.oram
    }

    /// Resets the wrapped ORAM's traffic statistics (PLB state is retained).
    pub fn reset_stats(&mut self) {
        self.oram.reset_stats();
    }
}

impl MainMemory for OramMemory {
    fn access(&mut self, line_addr: u64, _is_write: bool) -> u64 {
        self.oram.access(line_addr / self.block_bytes).cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(scheme: SchemePoint) -> TimingOramConfig {
        TimingOramConfig {
            data_capacity_bytes: 64 << 20,
            latency_samples: 5,
            ..TimingOramConfig::paper_default(scheme)
        }
    }

    #[test]
    fn baseline_walks_every_level_every_time() {
        let mut oram = TimingOram::new(small_config(SchemePoint::RX8));
        let h = oram.addressing().num_levels() as u64;
        assert!(h >= 3);
        for addr in 0..100u64 {
            let cost = oram.access(addr);
            assert_eq!(cost.posmap_accesses, h - 1);
            assert_eq!(cost.data_accesses, 1);
        }
    }

    #[test]
    fn plb_design_skips_posmap_accesses_on_locality() {
        let mut oram = TimingOram::new(small_config(SchemePoint::PcX32));
        // Sequential block addresses share PosMap blocks.
        let mut total_posmap = 0;
        for addr in 0..1000u64 {
            total_posmap += oram.access(addr).posmap_accesses;
        }
        let per_request = total_posmap as f64 / 1000.0;
        assert!(
            per_request < 0.5,
            "posmap accesses per request {per_request}"
        );
    }

    #[test]
    fn plb_design_costs_less_than_baseline_on_sequential_traffic() {
        let mut baseline = TimingOram::new(small_config(SchemePoint::RX8));
        let mut plb = TimingOram::new(small_config(SchemePoint::PcX32));
        let mut base_cycles = 0;
        let mut plb_cycles = 0;
        for addr in 0..500u64 {
            base_cycles += baseline.access(addr).cycles;
            plb_cycles += plb.access(addr).cycles;
        }
        assert!(
            plb_cycles < base_cycles,
            "PLB {plb_cycles} should beat baseline {base_cycles}"
        );
    }

    #[test]
    fn pmmac_increases_per_access_bytes_via_mac_field() {
        let pc = TimingOram::new(small_config(SchemePoint::PcX32));
        let pic = TimingOram::new(small_config(SchemePoint::PicX32));
        assert!(
            pic.data_latency().params().access_bytes() >= pc.data_latency().params().access_bytes()
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut oram = TimingOram::new(small_config(SchemePoint::PcX32));
        for addr in 0..50u64 {
            oram.access(addr * 1000);
        }
        assert_eq!(oram.stats().requests, 50);
        assert!(oram.stats().cycles > 0);
        oram.reset_stats();
        assert_eq!(oram.stats().requests, 0);
    }

    #[test]
    fn oram_memory_translates_byte_addresses() {
        let oram = TimingOram::new(small_config(SchemePoint::PcX32));
        let mut mem = OramMemory::new(oram);
        let lat = cache_sim::MainMemory::access(&mut mem, 0x1000, false);
        assert!(
            lat > 100,
            "an ORAM access takes hundreds of cycles, got {lat}"
        );
        assert_eq!(mem.oram().stats().requests, 1);
    }
}
