//! Plain-text table formatting for the experiment binaries.

/// Formats a table with a header row, padding every column to its widest
/// cell.
///
/// # Examples
///
/// ```
/// use oram_sim::report::format_table;
///
/// let t = format_table(
///     &["bench", "slowdown"],
///     &[vec!["mcf".to_string(), "9.81".to_string()]],
/// );
/// assert!(t.contains("bench"));
/// assert!(t.contains("mcf"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        padded.join("  ")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with 2 decimal places.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a byte count as KB with one decimal.
pub fn kb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_contains_all_cells() {
        let t = format_table(
            &["a", "longer"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains('1'));
        assert!(lines[3].starts_with("333333"));
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(kb(2048.0), "2.0");
    }
}
