//! The Keccak-f\[1600\] permutation underlying SHA-3 (FIPS-202).
//!
//! PMMAC (§6) instantiates its MAC with SHA3-224; this module provides the
//! sponge permutation, and [`crate::sha3`] builds the hash on top of it.

/// Number of 64-bit lanes in the Keccak-f\[1600\] state (5×5).
pub const STATE_LANES: usize = 25;
/// Number of rounds of Keccak-f\[1600\].
pub const ROUNDS: usize = 24;

/// Round constants for the iota step.
const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the rho step, indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Applies the full 24-round Keccak-f\[1600\] permutation to `state`.
///
/// Lanes are indexed `state[x + 5*y]` as in FIPS-202.
pub fn keccak_f1600(state: &mut [u64; STATE_LANES]) {
    for rc in RC.iter() {
        // Theta
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }

        // Rho and Pi combined
        let mut b = [0u64; STATE_LANES];
        for y in 0..5 {
            for x in 0..5 {
                b[y + 5 * ((2 * x + 3 * y) % 5)] = state[x + 5 * y].rotate_left(RHO[x][y]);
            }
        }

        // Chi
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // Iota
        state[0] ^= rc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: Keccak-f\[1600\] applied to the all-zero state.
    /// First lane of the result per the XKCP reference implementation.
    #[test]
    fn permutation_of_zero_state() {
        let mut state = [0u64; STATE_LANES];
        keccak_f1600(&mut state);
        assert_eq!(state[0], 0xF1258F7940E1DDE7);
        assert_eq!(state[1], 0x84D5CCF933C0478A);
        assert_eq!(state[24], 0xEAF1FF7B5CECA249);
    }

    #[test]
    fn permutation_is_not_identity_and_is_deterministic() {
        let mut s1 = [0x1234_5678_9abc_def0u64; STATE_LANES];
        let mut s2 = s1;
        keccak_f1600(&mut s1);
        keccak_f1600(&mut s2);
        assert_eq!(s1, s2);
        assert_ne!(s1, [0x1234_5678_9abc_def0u64; STATE_LANES]);
    }
}
