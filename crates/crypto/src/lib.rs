//! Cryptographic primitives for the Freecursive ORAM reproduction.
//!
//! The paper (Fletcher et al., ASPLOS 2015) instantiates its primitives with
//! AES-128 (for the PRF used by the compressed PosMap, §5.1, and for the
//! counter-mode bucket encryption, §6.4) and SHA3-224 (for the PMMAC message
//! authentication codes, §6.1).  This crate provides from-scratch, dependency
//! free software implementations of those primitives together with the small
//! wrappers the ORAM controller needs (`docs/ARCHITECTURE.md` at the
//! workspace root shows where each sits on the access path):
//!
//! * [`aes::Aes128`] — the block cipher (FIPS-197), encryption direction
//!   only, with two engines behind one type: AES-NI (x86_64, runtime
//!   detected) and a table-free bitsliced software fallback
//!   ([`fixslice`]), both processing 8 blocks per call.
//! * [`ctr::CtrKeystream`] / [`ctr::xor_in_place`] — AES counter-mode pads
//!   for probabilistic bucket encryption.
//! * [`sha3::Sha3_224`] — the Keccak-based hash used for MACs.
//! * [`prf::Prf`] / [`prf::AesPrf`] — the pseudorandom function
//!   `PRF_K(x) mod 2^L` that maps (address, counter) pairs to leaves.
//! * [`mac::MacKey`] — the keyed MAC `MAC_K(c || a || d)` of §6.2.1.
//!
//! # The batched API contract
//!
//! Every primitive that evaluates AES more than once per logical operation
//! exposes a batched entry point that routes through one engine call per
//! eight blocks, with identical output to the scalar path:
//!
//! * [`aes::Aes128::encrypt_blocks`] — any whole number of blocks in place.
//! * [`ctr::CtrKeystream::apply_batch`] / [`ctr::CtrKeystream::pad_blocks`]
//!   — keystream over arbitrary [`ctr::KeystreamSpan`]s of one buffer;
//!   counter blocks from *different* spans share engine batches, which is
//!   how an ORAM path's ~19 buckets seal in one batched pass per direction.
//! * [`prf::Prf::eval_many`] / [`prf::Prf::leaf_pair_for`] — batched leaf
//!   derivation.
//!
//! Batched calls allocate nothing; callers may rely on that on hot paths.
//!
//! # Engine selection
//!
//! The engine is chosen per cipher instance at construction: AES-NI when the
//! CPU supports it, unless the `force-soft-aes` cargo feature is enabled or
//! `ORAM_CRYPTO_FORCE_SOFT` is set to a non-empty value other than `0` in
//! the environment (read once per process).  [`aes::Aes128::engine`] reports
//! the decision.  Key material (expanded AES schedules, MAC keys) is
//! scrubbed with volatile writes on drop.
//!
//! # Examples
//!
//! ```
//! use oram_crypto::prf::{AesPrf, Prf};
//!
//! let prf = AesPrf::new([7u8; 16]);
//! // Leaf for block address 42 with access count 3 in a tree with 2^20 leaves.
//! let leaf = prf.leaf_for(42, 3, 20);
//! assert!(leaf < (1 << 20));
//! ```

// Unsafe code is denied everywhere except the two audited islands that opt
// back in: the AES-NI intrinsics (`aesni`) and the volatile key scrubbing
// (`zeroize`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
#[cfg(target_arch = "x86_64")]
pub(crate) mod aesni;
pub mod ctr;
pub mod fixslice;
pub mod keccak;
pub mod mac;
pub mod prf;
pub mod sha3;
pub(crate) mod zeroize;

pub use aes::{Aes128, EngineKind, PARALLEL_BLOCKS};
pub use ctr::CtrKeystream;
pub use mac::{Mac, MacKey};
pub use prf::{AesPrf, Prf};
pub use sha3::Sha3_224;
