//! Cryptographic primitives for the Freecursive ORAM reproduction.
//!
//! The paper (Fletcher et al., ASPLOS 2015) instantiates its primitives with
//! AES-128 (for the PRF used by the compressed PosMap, §5.1, and for the
//! counter-mode bucket encryption, §6.4) and SHA3-224 (for the PMMAC message
//! authentication codes, §6.1).  This crate provides from-scratch, dependency
//! free software implementations of those primitives together with the small
//! wrappers the ORAM controller needs:
//!
//! * [`aes::Aes128`] — the block cipher (FIPS-197), encryption direction only.
//! * [`ctr::CtrKeystream`] / [`ctr::xor_in_place`] — AES counter-mode pads for
//!   probabilistic bucket encryption.
//! * [`sha3::Sha3_224`] — the Keccak-based hash used for MACs.
//! * [`prf::Prf`] / [`prf::AesPrf`] — the pseudorandom function
//!   `PRF_K(x) mod 2^L` that maps (address, counter) pairs to leaves.
//! * [`mac::MacKey`] — the keyed MAC `MAC_K(c || a || d)` of §6.2.1.
//!
//! # Examples
//!
//! ```
//! use oram_crypto::prf::{AesPrf, Prf};
//!
//! let prf = AesPrf::new([7u8; 16]);
//! // Leaf for block address 42 with access count 3 in a tree with 2^20 leaves.
//! let leaf = prf.leaf_for(42, 3, 20);
//! assert!(leaf < (1 << 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod keccak;
pub mod mac;
pub mod prf;
pub mod sha3;

pub use aes::Aes128;
pub use ctr::CtrKeystream;
pub use mac::{Mac, MacKey};
pub use prf::{AesPrf, Prf};
pub use sha3::Sha3_224;
