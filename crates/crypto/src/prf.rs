//! The pseudorandom function used by the compressed PosMap and PMMAC.
//!
//! §5.2.1: the current leaf of block `a + j` is
//! `PRF_K(a + j || GC || IC_j) mod 2^L`; §6.2.1 uses the same construction
//! with the per-block access count `c` as the counter.  The paper implements
//! `PRF_K()` with AES-128 (§5.1); [`AesPrf`] mirrors that choice.
//!
//! The trait is object-safe so frontends can hold `Box<dyn Prf>` when the
//! cipher choice is a runtime configuration.

use crate::aes::Aes128;

/// A keyed pseudorandom function producing 64-bit outputs.
pub trait Prf: Send + Sync + std::fmt::Debug {
    /// Evaluates the PRF on a 128-bit input and returns 64 pseudorandom bits.
    fn eval(&self, input: u128) -> u64;

    /// Evaluates the PRF on every input, batched where the implementation
    /// supports it ([`AesPrf`] runs up to 8 evaluations per AES engine
    /// call).  Semantically identical to calling [`Prf::eval`] per element.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `out` differ in length.
    fn eval_many(&self, inputs: &[u128], out: &mut [u64]) {
        assert_eq!(inputs.len(), out.len(), "eval_many length mismatch");
        for (input, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot = self.eval(*input);
        }
    }

    /// Leaves for the same block under two counters in one batched PRF call
    /// — the frontends' common pattern (current leaf from the old counter,
    /// next leaf from the new one, §5.2.1).
    fn leaf_pair_for(&self, addr: u64, counter_a: u64, counter_b: u64, levels: u32) -> (u64, u64) {
        debug_assert!(levels <= 63, "leaf space must fit in u64");
        if levels == 0 {
            return (0, 0);
        }
        let base = u128::from(addr) << 64;
        let inputs = [base | u128::from(counter_a), base | u128::from(counter_b)];
        let mut out = [0u64; 2];
        self.eval_many(&inputs, &mut out);
        let mask = (1u64 << levels) - 1;
        (out[0] & mask, out[1] & mask)
    }

    /// Convenience: the leaf for block `addr` with access counter `counter`
    /// in a tree with `2^levels` leaves, i.e. `PRF_K(addr || counter) mod 2^L`.
    fn leaf_for(&self, addr: u64, counter: u64, levels: u32) -> u64 {
        debug_assert!(levels <= 63, "leaf space must fit in u64");
        let input = (u128::from(addr) << 64) | u128::from(counter);
        if levels == 0 {
            0
        } else {
            self.eval(input) & ((1u64 << levels) - 1)
        }
    }

    /// Leaf for a sub-block `k` of block `addr` (§5.4): the sub-block index is
    /// folded into the PRF input so sibling sub-blocks get independent leaves.
    fn subblock_leaf_for(&self, addr: u64, counter: u64, subblock: u32, levels: u32) -> u64 {
        let input = (u128::from(addr) << 64) | (u128::from(subblock) << 48) | u128::from(counter);
        if levels == 0 {
            0
        } else {
            self.eval(input) & ((1u64 << levels) - 1)
        }
    }
}

/// AES-128 based PRF, matching the paper's instantiation (§5.1).
///
/// # Examples
///
/// ```
/// use oram_crypto::prf::{AesPrf, Prf};
///
/// let prf = AesPrf::new([0u8; 16]);
/// assert_eq!(prf.eval(1), prf.eval(1));
/// assert_ne!(prf.eval(1), prf.eval(2));
/// ```
#[derive(Debug, Clone)]
pub struct AesPrf {
    cipher: Aes128,
}

impl AesPrf {
    /// Creates a PRF from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            cipher: Aes128::new(key),
        }
    }
}

impl Prf for AesPrf {
    fn eval(&self, input: u128) -> u64 {
        let ct = self.cipher.encrypt_block(input.to_be_bytes());
        let mut out = [0u8; 8];
        out.copy_from_slice(&ct[..8]);
        u64::from_be_bytes(out)
    }

    fn eval_many(&self, inputs: &[u128], out: &mut [u64]) {
        assert_eq!(inputs.len(), out.len(), "eval_many length mismatch");
        let mut buf = [0u8; crate::aes::PARALLEL_BLOCKS * 16];
        for (input_group, out_group) in inputs
            .chunks(crate::aes::PARALLEL_BLOCKS)
            .zip(out.chunks_mut(crate::aes::PARALLEL_BLOCKS))
        {
            let bytes = &mut buf[..16 * input_group.len()];
            for (slot, input) in bytes.chunks_exact_mut(16).zip(input_group) {
                slot.copy_from_slice(&input.to_be_bytes());
            }
            self.cipher.encrypt_blocks(bytes);
            for (slot, ct) in out_group.iter_mut().zip(bytes.chunks_exact(16)) {
                *slot = u64::from_be_bytes(ct[..8].try_into().expect("8-byte prefix"));
            }
        }
    }
}

/// A trivially fast, non-cryptographic PRF for large-scale timing simulations
/// where only the *distribution* of leaves matters, not unpredictability.
///
/// Uses the SplitMix64 finalizer, which passes basic avalanche tests.  Never
/// use this where an adversary model matters; the functional ORAM frontends
/// default to [`AesPrf`].
#[derive(Debug, Clone)]
pub struct SplitMixPrf {
    key: u64,
}

impl SplitMixPrf {
    /// Creates the PRF from a 64-bit seed.
    pub fn new(key: u64) -> Self {
        Self { key }
    }
}

impl Prf for SplitMixPrf {
    fn eval(&self, input: u128) -> u64 {
        let mut z = (input as u64)
            .wrapping_add((input >> 64) as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(self.key);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_is_bounded_by_level_count() {
        let prf = AesPrf::new([5u8; 16]);
        for levels in [1u32, 4, 16, 25, 32] {
            for addr in 0..64u64 {
                let leaf = prf.leaf_for(addr, addr * 3, levels);
                assert!(leaf < (1u64 << levels));
            }
        }
    }

    #[test]
    fn zero_levels_always_maps_to_leaf_zero() {
        let prf = AesPrf::new([5u8; 16]);
        assert_eq!(prf.leaf_for(123, 456, 0), 0);
    }

    #[test]
    fn counter_changes_leaf_with_high_probability() {
        let prf = AesPrf::new([5u8; 16]);
        let mut changed = 0;
        let trials = 200;
        for c in 0..trials {
            if prf.leaf_for(7, c, 20) != prf.leaf_for(7, c + 1, 20) {
                changed += 1;
            }
        }
        assert!(changed > trials - 5, "leaves should almost always change");
    }

    #[test]
    fn eval_many_matches_scalar_eval() {
        let prf = AesPrf::new([8u8; 16]);
        // 19 inputs: two full engine batches plus a tail.
        let inputs: Vec<u128> = (0..19u128).map(|i| i * 0x1234_5678_9ABC + 7).collect();
        let mut batched = vec![0u64; inputs.len()];
        prf.eval_many(&inputs, &mut batched);
        for (input, &got) in inputs.iter().zip(batched.iter()) {
            assert_eq!(got, prf.eval(*input));
        }
        // Default trait impl (SplitMix) agrees with per-element eval too.
        let sm = SplitMixPrf::new(3);
        let mut out = vec![0u64; inputs.len()];
        sm.eval_many(&inputs, &mut out);
        for (input, &got) in inputs.iter().zip(out.iter()) {
            assert_eq!(got, sm.eval(*input));
        }
    }

    #[test]
    fn leaf_pair_matches_individual_leaves() {
        let prf = AesPrf::new([6u8; 16]);
        for levels in [0u32, 1, 12, 25] {
            let (a, b) = prf.leaf_pair_for(42, 5, 6, levels);
            assert_eq!(a, prf.leaf_for(42, 5, levels));
            assert_eq!(b, prf.leaf_for(42, 6, levels));
        }
    }

    #[test]
    fn subblock_index_decorrelates_leaves() {
        let prf = AesPrf::new([5u8; 16]);
        let l0 = prf.subblock_leaf_for(9, 1, 0, 24);
        let l1 = prf.subblock_leaf_for(9, 1, 1, 24);
        assert_ne!(l0, l1);
    }

    #[test]
    fn splitmix_is_deterministic_and_roughly_uniform() {
        let prf = SplitMixPrf::new(42);
        assert_eq!(prf.eval(7), prf.eval(7));
        // Crude uniformity check: leaves over a small space should hit most
        // buckets.
        let levels = 8u32;
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            seen.insert(prf.leaf_for(i, 0, levels));
        }
        assert!(
            seen.len() > 240,
            "expected near-complete coverage of 256 leaves, got {}",
            seen.len()
        );
    }
}
