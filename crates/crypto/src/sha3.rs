//! SHA3-224 (FIPS-202) built on the Keccak-f\[1600\] sponge.
//!
//! PMMAC (§6.1) uses SHA3-224 as `MAC_K()`; the 28-byte digest is truncated to
//! the MAC width chosen by the design (80–128 bits, §6.3).

use crate::keccak::{keccak_f1600, STATE_LANES};

/// Digest length of SHA3-224 in bytes.
pub const DIGEST_BYTES: usize = 28;
/// Sponge rate of SHA3-224 in bytes (1152 bits).
pub const RATE_BYTES: usize = 144;

/// Incremental SHA3-224 hasher.
///
/// # Examples
///
/// ```
/// use oram_crypto::sha3::Sha3_224;
///
/// let mut h = Sha3_224::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d1 = h.finalize();
/// let d2 = Sha3_224::digest(b"hello world");
/// assert_eq!(d1, d2);
/// ```
#[derive(Debug, Clone)]
pub struct Sha3_224 {
    state: [u64; STATE_LANES],
    /// Bytes absorbed into the current (incomplete) rate block.
    buffer: [u8; RATE_BYTES],
    buffer_len: usize,
}

impl Default for Sha3_224 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha3_224 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: [0u64; STATE_LANES],
            buffer: [0u8; RATE_BYTES],
            buffer_len: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffer_len] = byte;
            self.buffer_len += 1;
            if self.buffer_len == RATE_BYTES {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for (lane_idx, chunk) in self.buffer.chunks(8).enumerate() {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(chunk);
            self.state[lane_idx] ^= u64::from_le_bytes(lane);
        }
        keccak_f1600(&mut self.state);
        self.buffer = [0u8; RATE_BYTES];
        self.buffer_len = 0;
    }

    /// Finalizes the hash and returns the 28-byte digest, consuming the
    /// hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_BYTES] {
        // SHA-3 domain separation suffix 0b01 followed by pad10*1.
        self.buffer[self.buffer_len] ^= 0x06;
        self.buffer[RATE_BYTES - 1] ^= 0x80;
        // Absorb the final (padded) block.
        for (lane_idx, chunk) in self.buffer.chunks(8).enumerate() {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(chunk);
            self.state[lane_idx] ^= u64::from_le_bytes(lane);
        }
        keccak_f1600(&mut self.state);

        let mut digest = [0u8; DIGEST_BYTES];
        for (i, chunk) in digest.chunks_mut(8).enumerate() {
            let lane = self.state[i].to_le_bytes();
            chunk.copy_from_slice(&lane[..chunk.len()]);
        }
        digest
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_BYTES] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS-202 / NIST known answer: SHA3-224 of the empty message.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha3_224::digest(b"")),
            "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7"
        );
    }

    /// NIST known answer: SHA3-224("abc").
    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha3_224::digest(b"abc")),
            "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf"
        );
    }

    /// NIST known answer for a message longer than one rate block
    /// (448 bits * 2 = two-block message "abcdbcde...nopq" repeated form).
    #[test]
    fn long_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha3_224::digest(msg)),
            "543e6868e1666c1a643630df77367ae5a62a85070a51c14cbf665cbc"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 143, 144, 145, 500, 999, 1000] {
            let mut h = Sha3_224::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha3_224::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha3_224::digest(b"a"), Sha3_224::digest(b"b"));
        assert_ne!(Sha3_224::digest(b""), Sha3_224::digest(b"\0"));
    }
}
