//! Best-effort key-material scrubbing.
//!
//! Key-holding types ([`crate::aes::Aes128`], [`crate::mac::MacKey`], the
//! engine key schedules) zero their buffers on `Drop` through volatile
//! writes, so expanded keys do not linger in freed memory.  Volatile stores
//! cannot be elided by the optimiser the way a plain `fill(0)` before a free
//! can; the compiler fence keeps surrounding code from being reordered past
//! the scrub.

use std::sync::atomic::{compiler_fence, Ordering};

/// Zeroes a byte buffer with volatile writes.
#[allow(unsafe_code)]
pub(crate) fn zeroize_bytes(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        // SAFETY: `b` is a valid, exclusive reference for the write.
        unsafe { std::ptr::write_volatile(b, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Zeroes a `u128` buffer with volatile writes.
#[allow(unsafe_code)]
pub(crate) fn zeroize_u128(words: &mut [u128]) {
    for w in words.iter_mut() {
        // SAFETY: `w` is a valid, exclusive reference for the write.
        unsafe { std::ptr::write_volatile(w, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroize_clears_every_byte() {
        let mut buf = [0xA5u8; 64];
        zeroize_bytes(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        let mut words = [u128::MAX; 8];
        zeroize_u128(&mut words);
        assert!(words.iter().all(|&w| w == 0));
    }
}
