//! AES-128 block cipher (encryption direction), per FIPS-197.
//!
//! The hardware prototype in the paper uses two OpenCores AES-128 units: a
//! pipelined core for path decryption/re-encryption and a smaller core for the
//! PRF (§7.2.1).  This module mirrors that with **two software engines behind
//! one type**:
//!
//! * **AES-NI** (the private `aesni` module, x86_64 only) — the hardware
//!   instructions, with eight blocks interleaved per call so the `AESENC`
//!   latency pipelines like the paper's dedicated unit.
//! * **Bitsliced** ([`crate::fixslice`]) — a table-free, constant-time
//!   software implementation processing eight blocks per call; the portable
//!   fallback.
//!
//! [`Aes128`] picks the engine once at construction: AES-NI when the CPU
//! reports it, unless the soft path is forced by the `force-soft-aes` cargo
//! feature or by setting `ORAM_CRYPTO_FORCE_SOFT` to anything but `0`/empty
//! in the environment (checked once per process).  [`Aes128::engine`] reports
//! the decision.
//!
//! The historical scalar implementation (S-box table + per-column GF(2^8)
//! arithmetic) is retained test-only as `encrypt_block_scalar`, the
//! reference the engines are validated against.  It is not constant-time and
//! is never dispatched to at runtime: soft-mode single blocks run through
//! the bitsliced engine with one occupied lane, so every non-AES-NI
//! encryption is table-free.
//!
//! Expanded round keys (both byte and plane form) are scrubbed with volatile
//! writes when the cipher is dropped, so key schedules do not linger in freed
//! memory.

use crate::fixslice::FixslicedKeys;
pub use crate::fixslice::PARALLEL_BLOCKS;

/// Number of bytes in an AES block.
pub const BLOCK_BYTES: usize = 16;
/// Number of bytes in an AES-128 key.
pub const KEY_BYTES: usize = 16;
/// Number of rounds for AES-128.
pub(crate) const ROUNDS: usize = 10;

/// The AES S-box, defined as the affine transform of the multiplicative
/// inverse in GF(2^8).  Stored as a constant table (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// S-box lookup (test helper for the bitsliced circuit).
#[cfg(test)]
pub(crate) fn sbox(x: u8) -> u8 {
    SBOX[x as usize]
}

/// Multiply two elements of GF(2^8) with the AES reduction polynomial
/// x^8 + x^4 + x^3 + x + 1 (test-only: the scalar reference cipher).
#[cfg(test)]
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Which implementation an [`Aes128`] instance dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Hardware AES instructions (`AESENC`/`AESENCLAST`), x86_64 only.
    AesNi,
    /// Table-free bitsliced software engine (8 blocks per call).
    Bitsliced,
}

impl EngineKind {
    /// Human-readable engine name (for logs and benchmark labels).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::AesNi => "aes-ni",
            EngineKind::Bitsliced => "soft-bitsliced",
        }
    }
}

/// Whether the soft engine is forced, by compile-time feature or by the
/// `ORAM_CRYPTO_FORCE_SOFT` environment variable (any value other than empty
/// or `0`).  The environment is consulted once per process.
fn force_soft() -> bool {
    if cfg!(feature = "force-soft-aes") {
        return true;
    }
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("ORAM_CRYPTO_FORCE_SOFT").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Picks the engine for new cipher instances.
fn select_engine() -> EngineKind {
    #[cfg(target_arch = "x86_64")]
    {
        if !force_soft() && crate::aesni::detected() {
            return EngineKind::AesNi;
        }
    }
    let _ = force_soft(); // non-x86_64: the override exists but changes nothing
    EngineKind::Bitsliced
}

/// AES-128 cipher with a pre-expanded key schedule and batched encryption.
///
/// # Examples
///
/// ```
/// use oram_crypto::aes::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
///
/// // Batched: encrypt many blocks in place with one engine call per eight.
/// let mut blocks = [0u8; 64];
/// aes.encrypt_blocks(&mut blocks);
/// assert_eq!(&blocks[..16], &ct);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; ROUNDS + 1],
    /// Engine-specific state: only the selected engine's schedule is built
    /// (the bitsliced plane broadcast is skipped entirely under AES-NI).
    state: EngineState,
}

/// Which engine an instance dispatches to, with that engine's extra state.
#[derive(Clone)]
enum EngineState {
    /// AES-NI needs nothing beyond the byte-form round keys.
    #[cfg(target_arch = "x86_64")]
    AesNi,
    /// The bitsliced engine's pre-broadcast plane schedule (boxed: ~1.4 KB,
    /// only materialised when the soft engine is actually selected).
    Soft(Box<FixslicedKeys>),
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("rounds", &ROUNDS)
            .field("engine", &self.engine())
            .finish()
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        crate::zeroize::zeroize_bytes(self.round_keys.as_flattened_mut());
    }
}

impl Aes128 {
    /// Creates a cipher instance by expanding `key` into the round-key
    /// schedule (byte form for the scalar/AES-NI paths, plane form for the
    /// bitsliced engine).
    pub fn new(key: [u8; KEY_BYTES]) -> Self {
        let mut words = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, w) in words.iter_mut().take(4).enumerate() {
            w.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                // RotWord
                temp.rotate_left(1);
                // SubWord
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&words[4 * r + c]);
            }
        }
        let state = match select_engine() {
            #[cfg(target_arch = "x86_64")]
            EngineKind::AesNi => EngineState::AesNi,
            #[cfg(not(target_arch = "x86_64"))]
            EngineKind::AesNi => unreachable!("AES-NI is never selected off x86_64"),
            EngineKind::Bitsliced => EngineState::Soft(Box::new(FixslicedKeys::new(&round_keys))),
        };
        Self { round_keys, state }
    }

    /// The engine this instance dispatches to.
    pub fn engine(&self) -> EngineKind {
        match self.state {
            #[cfg(target_arch = "x86_64")]
            EngineState::AesNi => EngineKind::AesNi,
            EngineState::Soft(_) => EngineKind::Bitsliced,
        }
    }

    /// The expanded round keys (for the engine tests).
    #[cfg(test)]
    pub(crate) fn round_keys(&self) -> &[[u8; 16]; ROUNDS + 1] {
        &self.round_keys
    }

    /// Encrypts a single 16-byte block and returns the ciphertext.
    ///
    /// Soft-mode single blocks still run through the bitsliced engine (one
    /// occupied lane) so the constant-time property holds for *every*
    /// non-AES-NI encryption, at the cost of a full batch per lone block —
    /// hot paths batch via [`Aes128::encrypt_blocks`] instead.
    // lint: ct-scope, no-alloc
    pub fn encrypt_block(&self, block: [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        match &self.state {
            #[cfg(target_arch = "x86_64")]
            EngineState::AesNi => {
                let mut out = block;
                crate::aesni::encrypt_blocks(&self.round_keys, &mut out);
                out
            }
            EngineState::Soft(keys) => {
                let mut batch = [0u8; crate::fixslice::BATCH_BYTES];
                batch[..BLOCK_BYTES].copy_from_slice(&block);
                keys.encrypt8(&mut batch);
                batch[..BLOCK_BYTES].try_into().expect("one block")
            }
        }
    }

    /// Encrypts `data` — any whole number of 16-byte blocks, laid out
    /// back-to-back — in place, eight blocks per engine call.
    ///
    /// This is the batched hot path used by [`crate::ctr::CtrKeystream`]:
    /// callers fill `data` with counter blocks and receive the keystream in
    /// place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of [`BLOCK_BYTES`].
    pub fn encrypt_blocks(&self, data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(BLOCK_BYTES),
            "batched encryption needs whole blocks, got {} bytes",
            data.len()
        );
        match &self.state {
            #[cfg(target_arch = "x86_64")]
            EngineState::AesNi => crate::aesni::encrypt_blocks(&self.round_keys, data),
            EngineState::Soft(keys) => {
                let mut chunks = data.chunks_exact_mut(crate::fixslice::BATCH_BYTES);
                for chunk in &mut chunks {
                    let batch: &mut [u8; crate::fixslice::BATCH_BYTES] =
                        chunk.try_into().expect("exact batch");
                    keys.encrypt8(batch);
                }
                let tail = chunks.into_remainder();
                if !tail.is_empty() {
                    // A short tail still runs one full-width bitsliced call
                    // (same cost as eight blocks, constant regardless of the
                    // tail length).
                    let mut batch = [0u8; crate::fixslice::BATCH_BYTES];
                    batch[..tail.len()].copy_from_slice(tail);
                    keys.encrypt8(&mut batch);
                    tail.copy_from_slice(&batch[..tail.len()]);
                }
            }
        }
    }
    // lint: end

    /// The historical scalar implementation: S-box table plus explicit
    /// GF(2^8) `MixColumns` arithmetic.  Test-only reference the engines are
    /// validated against; not constant-time, never dispatched to at runtime.
    #[cfg(test)]
    pub(crate) fn encrypt_block_scalar(&self, block: [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        let mut state = block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }
}

#[cfg(test)]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= *k;
    }
}

#[cfg(test)]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// The state is stored column-major: byte `state[4*c + r]` is row `r`,
/// column `c` (matching the FIPS-197 input ordering).
#[cfg(test)]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[cfg(test)]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

/// Scalar `ShiftRows` (test helper for the bitsliced permutation).
#[cfg(test)]
pub(crate) fn shift_rows_scalar(state: &mut [u8; 16]) {
    shift_rows(state);
}

/// Scalar `MixColumns` (test helper for the bitsliced permutation).
#[cfg(test)]
pub(crate) fn mix_columns_scalar(state: &mut [u8; 16]) {
    mix_columns(state);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
        assert_eq!(aes.encrypt_block_scalar(pt), expected);
    }

    /// FIPS-197 Appendix C.1 (AES-128) known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
        assert_eq!(aes.encrypt_block_scalar(pt), expected);
    }

    #[test]
    fn deterministic_and_key_dependent() {
        let a = Aes128::new([1u8; 16]);
        let b = Aes128::new([2u8; 16]);
        let block = [0xabu8; 16];
        assert_eq!(a.encrypt_block(block), a.encrypt_block(block));
        assert_ne!(a.encrypt_block(block), b.encrypt_block(block));
    }

    #[test]
    fn gf_mul_matches_known_products() {
        // 0x57 * 0x83 = 0xc1 (FIPS-197 §4.2 example).
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        // Multiplying by 1 is the identity.
        for x in 0..=255u8 {
            assert_eq!(gf_mul(x, 1), x);
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new([0x42u8; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains("42"));
        assert!(s.contains("Aes128"));
    }

    #[test]
    fn batched_matches_single_block_on_every_length() {
        // 0 through 20 blocks: covers the empty case, partial bitsliced
        // batches, one exact batch, and batch-plus-tail.
        let aes = Aes128::new([0x5Au8; 16]);
        for blocks in 0..=20usize {
            let mut data: Vec<u8> = (0..blocks * 16).map(|i| (i * 13 % 251) as u8).collect();
            let expected: Vec<u8> = data
                .chunks_exact(16)
                .flat_map(|b| aes.encrypt_block(b.try_into().unwrap()))
                .collect();
            aes.encrypt_blocks(&mut data);
            assert_eq!(data, expected, "{blocks} blocks");
        }
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn batched_rejects_partial_blocks() {
        let aes = Aes128::new([0u8; 16]);
        aes.encrypt_blocks(&mut [0u8; 17]);
    }

    #[test]
    fn engine_selection_is_reported() {
        let aes = Aes128::new([0u8; 16]);
        let kind = aes.engine();
        assert!(matches!(kind, EngineKind::AesNi | EngineKind::Bitsliced));
        assert!(!kind.label().is_empty());
        // Whatever was selected, a clone dispatches identically.
        assert_eq!(aes.clone().engine(), kind);
    }
}
