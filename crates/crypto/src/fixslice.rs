//! Bitsliced AES-128: the table-free, constant-time software engine.
//!
//! Processes [`PARALLEL_BLOCKS`] = 8 blocks per call.  The 8 × 16 input bytes
//! are transposed into eight 128-bit *bit planes* — plane `i`, bit `8·p + b`
//! holds bit `i` of byte `p` of block `b` — after which every round operates
//! on whole planes:
//!
//! * `SubBytes` is the Boyar–Peralta 113-gate boolean circuit (the circuit
//!   popularised by Käsper–Schwabe bitsliced AES), evaluated once across all
//!   128 byte lanes simultaneously; no S-box table, no secret-dependent loads
//!   or branches.
//! * `ShiftRows` and `MixColumns` are fixed mask/shift permutations of the
//!   plane bits (byte positions sit at 8-bit stride, so the masks are
//!   byte-granular constants).
//! * `AddRoundKey` XORs pre-broadcast round-key planes.
//!
//! The plane transpose (`ortho`) is the classic three-layer delta-swap
//! network and is an involution, so packing and unpacking share one routine.
//!
//! This engine is the portable fallback behind the AES-NI path and the only
//! engine when `ORAM_CRYPTO_FORCE_SOFT` / the `force-soft-aes` feature is in
//! effect; see [`crate::aes::Aes128`] for the dispatch rules.

use crate::aes::{BLOCK_BYTES, ROUNDS};

/// Blocks processed per engine call.
pub const PARALLEL_BLOCKS: usize = 8;

/// Bytes consumed by one batched call (8 blocks).
pub const BATCH_BYTES: usize = PARALLEL_BLOCKS * BLOCK_BYTES;

/// Round keys pre-broadcast into bit-plane form: `rk[r][i]` is plane `i` of
/// round key `r`, replicated across all eight block lanes.
#[derive(Clone)]
pub(crate) struct FixslicedKeys {
    rk: [[u128; 8]; ROUNDS + 1],
}

impl std::fmt::Debug for FixslicedKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material is never printed.
        f.debug_struct("FixslicedKeys").finish_non_exhaustive()
    }
}

impl Drop for FixslicedKeys {
    fn drop(&mut self) {
        crate::zeroize::zeroize_u128(self.rk.as_flattened_mut());
    }
}

impl FixslicedKeys {
    /// Broadcasts each expanded round key into plane form: bit `i` of key
    /// byte `p` becomes `0xFF` (all eight block lanes) at byte position `p`
    /// of plane `i`.
    pub(crate) fn new(round_keys: &[[u8; 16]; ROUNDS + 1]) -> Self {
        let mut rk = [[0u128; 8]; ROUNDS + 1];
        for (r, key) in round_keys.iter().enumerate() {
            for (p, &byte) in key.iter().enumerate() {
                for (i, plane) in rk[r].iter_mut().enumerate() {
                    if (byte >> i) & 1 == 1 {
                        *plane |= 0xFFu128 << (8 * p);
                    }
                }
            }
        }
        Self { rk }
    }

    /// Encrypts eight 16-byte blocks in place.
    // lint: ct-scope, no-alloc, no-panic
    pub(crate) fn encrypt8(&self, blocks: &mut [u8; BATCH_BYTES]) {
        let mut q = pack(blocks);
        add_round_key(&mut q, &self.rk[0]);
        for round in 1..ROUNDS {
            sub_bytes(&mut q);
            shift_rows(&mut q);
            mix_columns(&mut q);
            // lint: allow(no-panic, round is bounded by ROUNDS over a ROUNDS+1 array; the bound is compile-time)
            add_round_key(&mut q, &self.rk[round]);
        }
        sub_bytes(&mut q);
        shift_rows(&mut q);
        // lint: allow(no-panic, ROUNDS indexes the last slot of a ROUNDS+1 array; the bound is compile-time)
        add_round_key(&mut q, &self.rk[ROUNDS]);
        unpack(&q, blocks);
    }
}

// ---------------------------------------------------------------------------
// Plane transpose
// ---------------------------------------------------------------------------

/// One delta-swap layer of the transpose network.
macro_rules! swap {
    ($q:ident, $i:expr, $j:expr, $cl:expr, $ch:expr, $s:expr) => {{
        let a = $q[$i];
        let b = $q[$j];
        $q[$i] = (a & $cl) | ((b & $cl) << $s);
        $q[$j] = ((a & $ch) >> $s) | (b & $ch);
    }};
}

const CL1: u128 = 0x5555_5555_5555_5555_5555_5555_5555_5555;
const CH1: u128 = !CL1;
const CL2: u128 = 0x3333_3333_3333_3333_3333_3333_3333_3333;
const CH2: u128 = !CL2;
const CL4: u128 = 0x0F0F_0F0F_0F0F_0F0F_0F0F_0F0F_0F0F_0F0F;
const CH4: u128 = !CL4;

/// The 8×8 bit transpose applied across all sixteen byte positions at once.
/// Exchanging word index and bit-within-byte index is an involution, so the
/// same routine packs blocks into planes and planes back into blocks.
fn ortho(q: &mut [u128; 8]) {
    swap!(q, 0, 1, CL1, CH1, 1);
    swap!(q, 2, 3, CL1, CH1, 1);
    swap!(q, 4, 5, CL1, CH1, 1);
    swap!(q, 6, 7, CL1, CH1, 1);
    swap!(q, 0, 2, CL2, CH2, 2);
    swap!(q, 1, 3, CL2, CH2, 2);
    swap!(q, 4, 6, CL2, CH2, 2);
    swap!(q, 5, 7, CL2, CH2, 2);
    swap!(q, 0, 4, CL4, CH4, 4);
    swap!(q, 1, 5, CL4, CH4, 4);
    swap!(q, 2, 6, CL4, CH4, 4);
    swap!(q, 3, 7, CL4, CH4, 4);
}

/// Loads eight blocks into bit planes: plane `i`, bit `8·p + b` = bit `i` of
/// byte `p` of block `b`.
fn pack(blocks: &[u8; BATCH_BYTES]) -> [u128; 8] {
    let mut q = [0u128; 8];
    for (b, chunk) in blocks.chunks_exact(BLOCK_BYTES).enumerate() {
        // lint: allow(no-panic, lane index and chunk width are fixed by chunks_exact over an 8-block batch)
        q[b] = u128::from_le_bytes(chunk.try_into().expect("16-byte block"));
    }
    ortho(&mut q);
    q
}

/// Inverse of [`pack`].
fn unpack(q: &[u128; 8], blocks: &mut [u8; BATCH_BYTES]) {
    let mut q = *q;
    ortho(&mut q);
    for (b, chunk) in blocks.chunks_exact_mut(BLOCK_BYTES).enumerate() {
        // lint: allow(no-panic, lane index is fixed by chunks_exact_mut over an 8-block batch)
        chunk.copy_from_slice(&q[b].to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Round functions
// ---------------------------------------------------------------------------

fn add_round_key(q: &mut [u128; 8], rk: &[u128; 8]) {
    for (plane, key) in q.iter_mut().zip(rk.iter()) {
        *plane ^= *key;
    }
}

// Byte position `p` of the AES state occupies plane bits `[8p, 8p + 8)`;
// positions are column-major (`p = 4c + r`), so each aligned 32-bit group of
// a plane is one column and byte `r` of that group is row `r`.

/// Destination-byte masks for `ShiftRows`: row `r` of column `c` pulls from
/// column `(c + r) mod 4`, i.e. a shift by `32·r` bits with wrap-around
/// handled by a second masked shift.
const SR_ROW0: u128 = 0x0000_00FF_0000_00FF_0000_00FF_0000_00FF;
const SR_ROW1_A: u128 = 0x0000_0000_0000_FF00_0000_FF00_0000_FF00;
const SR_ROW1_B: u128 = 0x0000_FF00_0000_0000_0000_0000_0000_0000;
const SR_ROW2_A: u128 = 0x0000_0000_0000_0000_00FF_0000_00FF_0000;
const SR_ROW2_B: u128 = 0x00FF_0000_00FF_0000_0000_0000_0000_0000;
const SR_ROW3_A: u128 = 0x0000_0000_0000_0000_0000_0000_FF00_0000;
const SR_ROW3_B: u128 = 0xFF00_0000_FF00_0000_FF00_0000_0000_0000;

fn shift_rows(q: &mut [u128; 8]) {
    for plane in q.iter_mut() {
        let w = *plane;
        *plane = (w & SR_ROW0)
            | ((w >> 32) & SR_ROW1_A)
            | ((w << 96) & SR_ROW1_B)
            | ((w >> 64) & SR_ROW2_A)
            | ((w << 64) & SR_ROW2_B)
            | ((w >> 96) & SR_ROW3_A)
            | ((w << 32) & SR_ROW3_B);
    }
}

/// Rotates every column one row up (byte at row `r` takes the value from row
/// `(r + 1) mod 4` of the same column): the `a_{r+1}` term of `MixColumns`.
const RC_LOW: u128 = 0x00FF_FFFF_00FF_FFFF_00FF_FFFF_00FF_FFFF;
const RC_HIGH: u128 = !RC_LOW;

#[inline(always)]
fn rotate_rows_1(w: u128) -> u128 {
    ((w >> 8) & RC_LOW) | ((w << 24) & RC_HIGH)
}

/// `MixColumns` over planes: with `t = a ⊕ rot1(a)`, the output byte is
/// `xtime(t) ⊕ rot1(a) ⊕ rot2(a) ⊕ rot3(a)`; `xtime` is the plane-index
/// shuffle with the reduction polynomial's carries folded in from plane 7.
fn mix_columns(q: &mut [u128; 8]) {
    let mut r1 = [0u128; 8];
    let mut t = [0u128; 8];
    for i in 0..8 {
        // lint: allow(no-panic, i ranges over 0..8 into [u128; 8] arrays; the bound is compile-time)
        r1[i] = rotate_rows_1(q[i]);
        // lint: allow(no-panic, i ranges over 0..8 into [u128; 8] arrays; the bound is compile-time)
        t[i] = q[i] ^ r1[i];
    }
    // acc = rot1 ^ rot2 ^ rot3; rot2(a) ^ rot3(a) = rot2(a ^ rot1(a)) = rot2(t).
    let mut acc = [0u128; 8];
    for i in 0..8 {
        // lint: allow(no-panic, i ranges over 0..8 into [u128; 8] arrays; the bound is compile-time)
        acc[i] = r1[i] ^ rotate_rows_1(rotate_rows_1(t[i]));
    }
    let c = t[7]; // carries out of the top bit
    q[0] = c ^ acc[0];
    q[1] = t[0] ^ c ^ acc[1];
    q[2] = t[1] ^ acc[2];
    q[3] = t[2] ^ c ^ acc[3];
    q[4] = t[3] ^ c ^ acc[4];
    q[5] = t[4] ^ acc[5];
    q[6] = t[5] ^ acc[6];
    q[7] = t[6] ^ acc[7];
}

/// The AES S-box as a 113-gate boolean circuit (Boyar–Peralta), applied to
/// all 128 byte lanes at once.  Input/output convention: `x0`/`s0` are the
/// **most significant** bits, so plane 7 feeds `x0` and `s0` lands in
/// plane 7.
#[allow(clippy::similar_names)]
fn sub_bytes(q: &mut [u128; 8]) {
    let x0 = q[7];
    let x1 = q[6];
    let x2 = q[5];
    let x3 = q[4];
    let x4 = q[3];
    let x5 = q[2];
    let x6 = q[1];
    let x7 = q[0];

    // Top linear transform.
    let y14 = x3 ^ x5;
    let y13 = x0 ^ x6;
    let y9 = x0 ^ x3;
    let y8 = x0 ^ x5;
    let t0 = x1 ^ x2;
    let y1 = t0 ^ x7;
    let y4 = y1 ^ x3;
    let y12 = y13 ^ y14;
    let y2 = y1 ^ x0;
    let y5 = y1 ^ x6;
    let y3 = y5 ^ y8;
    let t1 = x4 ^ y12;
    let y15 = t1 ^ x5;
    let y20 = t1 ^ x1;
    let y6 = y15 ^ x7;
    let y10 = y15 ^ t0;
    let y11 = y20 ^ y9;
    let y7 = x7 ^ y11;
    let y17 = y10 ^ y11;
    let y19 = y10 ^ y8;
    let y16 = t0 ^ y11;
    let y21 = y13 ^ y16;
    let y18 = x0 ^ y16;

    // Shared non-linear middle section (GF(2^4) inversion tower).
    let t2 = y12 & y15;
    let t3 = y3 & y6;
    let t4 = t3 ^ t2;
    let t5 = y4 & x7;
    let t6 = t5 ^ t2;
    let t7 = y13 & y16;
    let t8 = y5 & y1;
    let t9 = t8 ^ t7;
    let t10 = y2 & y7;
    let t11 = t10 ^ t7;
    let t12 = y9 & y11;
    let t13 = y14 & y17;
    let t14 = t13 ^ t12;
    let t15 = y8 & y10;
    let t16 = t15 ^ t12;
    let t17 = t4 ^ t14;
    let t18 = t6 ^ t16;
    let t19 = t9 ^ t14;
    let t20 = t11 ^ t16;
    let t21 = t17 ^ y20;
    let t22 = t18 ^ y19;
    let t23 = t19 ^ y21;
    let t24 = t20 ^ y18;
    let t25 = t21 ^ t22;
    let t26 = t21 & t23;
    let t27 = t24 ^ t26;
    let t28 = t25 & t27;
    let t29 = t28 ^ t22;
    let t30 = t23 ^ t24;
    let t31 = t22 ^ t26;
    let t32 = t31 & t30;
    let t33 = t32 ^ t24;
    let t34 = t23 ^ t33;
    let t35 = t27 ^ t33;
    let t36 = t24 & t35;
    let t37 = t36 ^ t34;
    let t38 = t27 ^ t36;
    let t39 = t29 & t38;
    let t40 = t25 ^ t39;
    let t41 = t40 ^ t37;
    let t42 = t29 ^ t33;
    let t43 = t29 ^ t40;
    let t44 = t33 ^ t37;
    let t45 = t42 ^ t41;
    let z0 = t44 & y15;
    let z1 = t37 & y6;
    let z2 = t33 & x7;
    let z3 = t43 & y16;
    let z4 = t40 & y1;
    let z5 = t29 & y7;
    let z6 = t42 & y11;
    let z7 = t45 & y17;
    let z8 = t41 & y10;
    let z9 = t44 & y12;
    let z10 = t37 & y3;
    let z11 = t33 & y4;
    let z12 = t43 & y13;
    let z13 = t40 & y5;
    let z14 = t29 & y2;
    let z15 = t42 & y9;
    let z16 = t45 & y14;
    let z17 = t41 & y8;

    // Bottom linear transform (includes the affine constant 0x63 as the
    // complemented outputs s0–s2, s6, s7).
    let t46 = z15 ^ z16;
    let t47 = z10 ^ z11;
    let t48 = z5 ^ z13;
    let t49 = z9 ^ z10;
    let t50 = z2 ^ z12;
    let t51 = z2 ^ z5;
    let t52 = z7 ^ z8;
    let t53 = z0 ^ z3;
    let t54 = z6 ^ z7;
    let t55 = z16 ^ z17;
    let t56 = z12 ^ t48;
    let t57 = t50 ^ t53;
    let t58 = z4 ^ t46;
    let t59 = z3 ^ t54;
    let t60 = t46 ^ t57;
    let t61 = z14 ^ t57;
    let t62 = t52 ^ t58;
    let t63 = t49 ^ t58;
    let t64 = z4 ^ t59;
    let t65 = t61 ^ t62;
    let t66 = z1 ^ t63;
    let s0 = t59 ^ t63;
    let s6 = t56 ^ !t62;
    let s7 = t48 ^ !t60;
    let t67 = t64 ^ t65;
    let s3 = t53 ^ t66;
    let s4 = t51 ^ t66;
    let s5 = t47 ^ t65;
    let s1 = t64 ^ !s3;
    let s2 = t55 ^ !t67;

    q[7] = s0;
    q[6] = s1;
    q[5] = s2;
    q[4] = s3;
    q[3] = s4;
    q[2] = s5;
    q[1] = s6;
    q[0] = s7;
}
// lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    /// Naive bit-by-bit reference for the plane layout contract.
    fn pack_reference(blocks: &[u8; BATCH_BYTES]) -> [u128; 8] {
        let mut q = [0u128; 8];
        for b in 0..PARALLEL_BLOCKS {
            for p in 0..BLOCK_BYTES {
                let byte = blocks[b * BLOCK_BYTES + p];
                for (i, plane) in q.iter_mut().enumerate() {
                    if (byte >> i) & 1 == 1 {
                        *plane |= 1u128 << (8 * p + b);
                    }
                }
            }
        }
        q
    }

    fn test_blocks() -> [u8; BATCH_BYTES] {
        let mut blocks = [0u8; BATCH_BYTES];
        for (i, byte) in blocks.iter_mut().enumerate() {
            *byte = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        blocks
    }

    #[test]
    fn pack_matches_naive_reference_and_roundtrips() {
        let blocks = test_blocks();
        assert_eq!(pack(&blocks), pack_reference(&blocks));
        let mut back = [0u8; BATCH_BYTES];
        unpack(&pack(&blocks), &mut back);
        assert_eq!(back, blocks);
    }

    #[test]
    fn sub_bytes_matches_sbox_table_exhaustively() {
        // Every lane gets a different input byte; two passes cover all 256.
        for base in [0u8, 128] {
            let mut blocks = [0u8; BATCH_BYTES];
            for (i, byte) in blocks.iter_mut().enumerate() {
                *byte = base + i as u8;
            }
            let mut q = pack(&blocks);
            sub_bytes(&mut q);
            let mut out = [0u8; BATCH_BYTES];
            unpack(&q, &mut out);
            for (i, &byte) in out.iter().enumerate() {
                assert_eq!(
                    byte,
                    crate::aes::sbox(base + i as u8),
                    "S-box mismatch at input {}",
                    base + i as u8
                );
            }
        }
    }

    #[test]
    fn shift_rows_and_mix_columns_match_scalar_reference() {
        // One round of ShiftRows ∘ MixColumns against the scalar code, with
        // eight distinct blocks in flight.
        let blocks = test_blocks();
        let mut q = pack(&blocks);
        shift_rows(&mut q);
        mix_columns(&mut q);
        let mut batched = [0u8; BATCH_BYTES];
        unpack(&q, &mut batched);

        for b in 0..PARALLEL_BLOCKS {
            let mut state: [u8; 16] = blocks[b * 16..(b + 1) * 16].try_into().unwrap();
            crate::aes::shift_rows_scalar(&mut state);
            crate::aes::mix_columns_scalar(&mut state);
            assert_eq!(&batched[b * 16..(b + 1) * 16], &state, "block {b}");
        }
    }

    #[test]
    fn encrypt8_matches_scalar_cipher() {
        let aes = Aes128::new([0x3Cu8; 16]);
        let keys = FixslicedKeys::new(aes.round_keys());
        let mut blocks = test_blocks();
        let expected: Vec<u8> = blocks
            .chunks_exact(16)
            .flat_map(|b| aes.encrypt_block_scalar(b.try_into().unwrap()))
            .collect();
        keys.encrypt8(&mut blocks);
        assert_eq!(&blocks[..], &expected[..]);
    }

    #[test]
    fn fips197_appendix_b_through_the_bitsliced_engine() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        let keys = FixslicedKeys::new(aes.round_keys());
        // All eight lanes carry the same block; all must produce the vector.
        let mut blocks = [0u8; BATCH_BYTES];
        for chunk in blocks.chunks_exact_mut(16) {
            chunk.copy_from_slice(&pt);
        }
        keys.encrypt8(&mut blocks);
        for chunk in blocks.chunks_exact(16) {
            assert_eq!(chunk, &expected);
        }
    }

    #[test]
    fn debug_does_not_leak_key_planes() {
        let aes = Aes128::new([0x42u8; 16]);
        let keys = FixslicedKeys::new(aes.round_keys());
        let s = format!("{keys:?}");
        assert!(!s.contains("42"), "leaked key material: {s}");
    }
}
