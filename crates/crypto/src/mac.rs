//! The replay-resistant MAC of PMMAC (§6.1–§6.2).
//!
//! PMMAC stores, alongside each data block, `h = MAC_K(c || a || d)` where `c`
//! is the per-block access counter, `a` the block address, and `d` the block
//! data.  Because the counters are sourced from tamper-proof on-chip state
//! (directly or transitively through verified PosMap blocks), replaying an old
//! `(h, d)` pair fails the check.
//!
//! We realise `MAC_K` as SHA3-224 over `key || c || a || d` truncated to
//! [`MAC_BYTES`] bytes, matching the paper's SHA3-224 unit and its 80–128 bit
//! MAC field (§6.3); the prefix-key construction is safe for sponge hashes
//! (no length-extension property).

use crate::sha3::Sha3_224;

/// Width of a stored MAC in bytes (112 bits, within the paper's 80–128 bit
/// range).
pub const MAC_BYTES: usize = 14;

/// A message authentication code attached to an ORAM block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mac(pub [u8; MAC_BYTES]);

impl Mac {
    /// Returns the MAC bytes.
    pub fn as_bytes(&self) -> &[u8; MAC_BYTES] {
        &self.0
    }
}

impl AsRef<[u8]> for Mac {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A keyed MAC generator/verifier.
///
/// # Examples
///
/// ```
/// use oram_crypto::mac::MacKey;
///
/// let key = MacKey::new([1u8; 16]);
/// let mac = key.compute(5, 42, b"block data");
/// assert!(key.verify(5, 42, b"block data", &mac));
/// assert!(!key.verify(6, 42, b"block data", &mac)); // stale counter = replay
/// ```
#[derive(Clone)]
pub struct MacKey {
    key: [u8; 16],
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MacKey").finish_non_exhaustive()
    }
}

impl Drop for MacKey {
    fn drop(&mut self) {
        // Like the AES key schedules, the MAC key is scrubbed on drop so it
        // does not linger in freed memory.
        crate::zeroize::zeroize_bytes(&mut self.key);
    }
}

impl MacKey {
    /// Creates a MAC key.
    pub fn new(key: [u8; 16]) -> Self {
        Self { key }
    }

    /// Computes `MAC_K(counter || addr || data)`.
    pub fn compute(&self, counter: u64, addr: u64, data: &[u8]) -> Mac {
        let mut h = Sha3_224::new();
        h.update(&self.key);
        h.update(&counter.to_le_bytes());
        h.update(&addr.to_le_bytes());
        h.update(data);
        let digest = h.finalize();
        let mut mac = [0u8; MAC_BYTES];
        mac.copy_from_slice(&digest[..MAC_BYTES]);
        Mac(mac)
    }

    /// Verifies a MAC; returns `true` iff it matches.
    pub fn verify(&self, counter: u64, addr: u64, data: &[u8], mac: &Mac) -> bool {
        &self.compute(counter, addr, data) == mac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_genuine_rejects_tampered_data() {
        let key = MacKey::new([3u8; 16]);
        let mac = key.compute(1, 100, b"hello");
        assert!(key.verify(1, 100, b"hello", &mac));
        assert!(!key.verify(1, 100, b"hellO", &mac));
        assert!(!key.verify(1, 101, b"hello", &mac));
        assert!(!key.verify(2, 100, b"hello", &mac));
    }

    #[test]
    fn different_keys_disagree() {
        let k1 = MacKey::new([1u8; 16]);
        let k2 = MacKey::new([2u8; 16]);
        let mac = k1.compute(0, 0, b"x");
        assert!(!k2.verify(0, 0, b"x", &mac));
    }

    #[test]
    fn replay_of_old_counter_fails() {
        // The counter embedded in the MAC is what makes PMMAC replay-resistant
        // (§6.1): an old (mac, data) pair cannot satisfy the check once the
        // frontend has moved to a newer counter.
        let key = MacKey::new([9u8; 16]);
        let old = key.compute(7, 55, b"old contents");
        assert!(!key.verify(8, 55, b"old contents", &old));
    }

    #[test]
    fn debug_hides_key() {
        let key = MacKey::new([0xAB; 16]);
        assert!(!format!("{key:?}").contains("171"));
    }

    #[test]
    fn mac_is_14_bytes() {
        let key = MacKey::new([0u8; 16]);
        assert_eq!(key.compute(0, 0, b"").as_bytes().len(), MAC_BYTES);
    }
}
