//! AES counter-mode keystream generation for probabilistic bucket encryption.
//!
//! The ORAM tree stores every bucket encrypted under AES counter mode (§3.1).
//! The paper discusses two seeding disciplines (§6.4):
//!
//! * **Per-bucket seeds** (the scheme of Ren et al. [26]): the pad for chunk
//!   `i` of a bucket is `AES_K(BucketID || BucketSeed || i)`.  This is
//!   vulnerable to a one-time-pad replay under an active adversary.
//! * **Global seed** (the fix): the pad is `AES_K(GlobalSeed || i)` where
//!   `GlobalSeed` is a monotonically increasing counter inside the ORAM
//!   controller, so no pad ever repeats.
//!
//! This module only produces keystreams; the seed discipline lives in
//! `path-oram::encryption`, which chooses what goes into the counter block.

use crate::aes::{Aes128, BLOCK_BYTES};

/// A counter-mode keystream generator over AES-128.
///
/// # Examples
///
/// ```
/// use oram_crypto::ctr::{CtrKeystream, xor_in_place};
///
/// let ks = CtrKeystream::new([3u8; 16]);
/// let mut data = b"secret bucket bytes".to_vec();
/// let pad_seed = 77u128;
/// ks.apply(pad_seed, &mut data);          // encrypt
/// assert_ne!(&data, b"secret bucket bytes");
/// ks.apply(pad_seed, &mut data);          // decrypt (XOR is an involution)
/// assert_eq!(&data, b"secret bucket bytes");
/// # let _ = xor_in_place;
/// ```
#[derive(Debug, Clone)]
pub struct CtrKeystream {
    cipher: Aes128,
}

impl CtrKeystream {
    /// Creates a keystream generator from a session key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            cipher: Aes128::new(key),
        }
    }

    /// Produces the `chunk`-th 16-byte pad for the given 128-bit seed.
    ///
    /// The seed occupies the high 96 bits of the counter block and the chunk
    /// index the low 32 bits, so a single seed can cover buckets of up to
    /// 64 GiB without pad reuse.
    pub fn pad(&self, seed: u128, chunk: u32) -> [u8; BLOCK_BYTES] {
        let counter: u128 = (seed << 32) | u128::from(chunk);
        self.cipher.encrypt_block(counter.to_be_bytes())
    }

    /// XORs the keystream for `seed` into `data` in place (encrypts or
    /// decrypts, since XOR is an involution).
    pub fn apply(&self, seed: u128, data: &mut [u8]) {
        for (chunk_idx, chunk) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let pad = self.pad(seed, chunk_idx as u32);
            for (b, p) in chunk.iter_mut().zip(pad.iter()) {
                *b ^= *p;
            }
        }
    }
}

/// XORs `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let ks = CtrKeystream::new([9u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 64, 320, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = original.clone();
            ks.apply(12345, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} should change under encryption");
            }
            ks.apply(12345, &mut data);
            assert_eq!(data, original);
        }
    }

    #[test]
    fn different_seeds_give_different_pads() {
        let ks = CtrKeystream::new([9u8; 16]);
        assert_ne!(ks.pad(1, 0), ks.pad(2, 0));
        assert_ne!(ks.pad(1, 0), ks.pad(1, 1));
    }

    #[test]
    fn pad_reuse_leaks_xor_of_plaintexts() {
        // This is exactly the attack of §6.4: if the same (seed, chunk) pad is
        // used for two plaintexts, their XOR is revealed.
        let ks = CtrKeystream::new([1u8; 16]);
        let d1 = [0x11u8; 16];
        let d2 = [0x2eu8; 16];
        let mut c1 = d1;
        let mut c2 = d2;
        ks.apply(99, &mut c1);
        ks.apply(99, &mut c2);
        let mut xor = [0u8; 16];
        for i in 0..16 {
            xor[i] = c1[i] ^ c2[i];
        }
        let mut expected = [0u8; 16];
        for i in 0..16 {
            expected[i] = d1[i] ^ d2[i];
        }
        assert_eq!(xor, expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_in_place_rejects_length_mismatch() {
        let mut a = [0u8; 4];
        xor_in_place(&mut a, &[0u8; 5]);
    }
}
