//! AES counter-mode keystream generation for probabilistic bucket encryption.
//!
//! The ORAM tree stores every bucket encrypted under AES counter mode (§3.1).
//! The paper discusses two seeding disciplines (§6.4):
//!
//! * **Per-bucket seeds** (the scheme of Ren et al. \[26\]): the pad for chunk
//!   `i` of a bucket is `AES_K(BucketID || BucketSeed || i)`.  This is
//!   vulnerable to a one-time-pad replay under an active adversary.
//! * **Global seed** (the fix): the pad is `AES_K(GlobalSeed || i)` where
//!   `GlobalSeed` is a monotonically increasing counter inside the ORAM
//!   controller, so no pad ever repeats.
//!
//! This module only produces keystreams; the seed discipline lives in
//! `path-oram::encryption`, which chooses what goes into the counter block.
//!
//! # Batched API contract
//!
//! The hot path is [`CtrKeystream::apply_batch`]: the caller describes any
//! number of [`KeystreamSpan`]s — disjoint or not — over one buffer, and the
//! keystream for **all** spans is generated through the batched AES engine
//! ([`crate::aes::Aes128::encrypt_blocks`], 8 blocks per engine call), with
//! counter blocks from *different* spans sharing an engine batch.  Sealing an
//! entire ORAM path (~19 buckets) therefore costs ⌈total blocks / 8⌉ engine
//! calls instead of one partially-filled call per bucket.  Guarantees:
//!
//! * Byte-for-byte equivalence with the scalar construction: chunk `i` of a
//!   span is XORed with `AES_K((seed << 32) | i)` exactly as
//!   [`CtrKeystream::pad`] produces it, for any span length (a trailing
//!   partial chunk uses the pad's prefix) and any starting offset.
//! * XOR is an involution, so the same call encrypts and decrypts.
//! * No heap allocation: batching state lives on the stack.

use crate::aes::{Aes128, EngineKind, BLOCK_BYTES, PARALLEL_BLOCKS};

/// One keystream application: XOR `data[start..start + len]` with the
/// keystream for `seed`, chunk counter starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeystreamSpan {
    /// Pad seed; occupies the high 96 bits of each counter block.
    pub seed: u128,
    /// Byte offset of the span within the buffer passed to
    /// [`CtrKeystream::apply_batch`].
    pub start: usize,
    /// Span length in bytes (need not be a multiple of 16).
    pub len: usize,
}

/// A counter-mode keystream generator over AES-128.
///
/// # Examples
///
/// ```
/// use oram_crypto::ctr::{CtrKeystream, KeystreamSpan, xor_in_place};
///
/// let ks = CtrKeystream::new([3u8; 16]);
/// let mut data = b"secret bucket bytes".to_vec();
/// let pad_seed = 77u128;
/// ks.apply(pad_seed, &mut data);          // encrypt
/// assert_ne!(&data, b"secret bucket bytes");
/// ks.apply(pad_seed, &mut data);          // decrypt (XOR is an involution)
/// assert_eq!(&data, b"secret bucket bytes");
///
/// // Batched: many spans, one engine pass.
/// let mut buf = vec![0u8; 64];
/// let spans = [
///     KeystreamSpan { seed: 1, start: 0, len: 32 },
///     KeystreamSpan { seed: 2, start: 32, len: 32 },
/// ];
/// ks.apply_batch(&spans, &mut buf);
/// ks.apply_batch(&spans, &mut buf);
/// assert_eq!(buf, vec![0u8; 64]);
/// # let _ = xor_in_place;
/// ```
#[derive(Debug, Clone)]
pub struct CtrKeystream {
    cipher: Aes128,
}

/// Builds the counter block for `(seed, chunk)`: the seed in the high 96
/// bits, the chunk index in the low 32.
#[inline]
fn counter_block(seed: u128, chunk: u32) -> [u8; BLOCK_BYTES] {
    ((seed << 32) | u128::from(chunk)).to_be_bytes()
}

impl CtrKeystream {
    /// Creates a keystream generator from a session key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            cipher: Aes128::new(key),
        }
    }

    /// The AES engine this keystream dispatches to.
    pub fn engine(&self) -> EngineKind {
        self.cipher.engine()
    }

    /// Produces the `chunk`-th 16-byte pad for the given 128-bit seed.
    ///
    /// The seed occupies the high 96 bits of the counter block and the chunk
    /// index the low 32 bits, so a single seed can cover buckets of up to
    /// 64 GiB without pad reuse.
    pub fn pad(&self, seed: u128, chunk: u32) -> [u8; BLOCK_BYTES] {
        self.cipher.encrypt_block(counter_block(seed, chunk))
    }

    /// Fills `out` with the keystream for `seed` starting at chunk index
    /// `first_chunk` (chunk indices increment per 16 bytes; a trailing
    /// partial chunk receives the pad's prefix).  Runs through the batched
    /// engine: this *is* CTR encryption of whatever the caller later XORs.
    // lint: ct-scope, no-alloc
    pub fn pad_blocks(&self, seed: u128, first_chunk: u32, out: &mut [u8]) {
        let exact = out.len() / BLOCK_BYTES * BLOCK_BYTES;
        for (i, chunk) in out[..exact].chunks_exact_mut(BLOCK_BYTES).enumerate() {
            chunk.copy_from_slice(&counter_block(seed, first_chunk.wrapping_add(i as u32)));
        }
        self.cipher.encrypt_blocks(&mut out[..exact]);
        if exact < out.len() {
            let chunk = first_chunk.wrapping_add((exact / BLOCK_BYTES) as u32);
            let pad = self.pad(seed, chunk);
            let tail = &mut out[exact..];
            let n = tail.len();
            tail.copy_from_slice(&pad[..n]);
        }
    }

    /// XORs the keystream for `seed` into `data` in place (encrypts or
    /// decrypts, since XOR is an involution).
    pub fn apply(&self, seed: u128, data: &mut [u8]) {
        let len = data.len();
        self.apply_batch(
            &[KeystreamSpan {
                seed,
                start: 0,
                len,
            }],
            data,
        );
    }

    /// XORs every span's keystream into `data` in place, batching counter
    /// blocks from all spans through the AES engine together (see the module
    /// docs for the full contract).
    ///
    /// # Panics
    ///
    /// Panics if any span reaches past the end of `data`.
    pub fn apply_batch(&self, spans: &[KeystreamSpan], data: &mut [u8]) {
        // Counter blocks accumulate here and flush through the engine
        // whenever all lanes are full; `dst` remembers where each lane's pad
        // lands.  Everything lives on the stack — the access hot path above
        // this call is allocation-free.
        let mut pads = [0u8; PARALLEL_BLOCKS * BLOCK_BYTES];
        let mut dst = [(0usize, 0usize); PARALLEL_BLOCKS];
        let mut lanes = 0usize;

        let flush = |pads: &mut [u8; PARALLEL_BLOCKS * BLOCK_BYTES],
                     dst: &[(usize, usize); PARALLEL_BLOCKS],
                     lanes: usize,
                     data: &mut [u8]| {
            self.cipher.encrypt_blocks(&mut pads[..lanes * BLOCK_BYTES]);
            for (lane, &(offset, len)) in dst.iter().enumerate().take(lanes) {
                let pad = &pads[lane * BLOCK_BYTES..lane * BLOCK_BYTES + len];
                for (b, p) in data[offset..offset + len].iter_mut().zip(pad) {
                    *b ^= *p;
                }
            }
        };

        for span in spans {
            assert!(
                span.start + span.len <= data.len(),
                "span {span:?} exceeds buffer of {} bytes",
                data.len()
            );
            let mut remaining = span.len;
            let mut chunk = 0u32;
            while remaining > 0 {
                let len = remaining.min(BLOCK_BYTES);
                pads[lanes * BLOCK_BYTES..(lanes + 1) * BLOCK_BYTES]
                    .copy_from_slice(&counter_block(span.seed, chunk));
                dst[lanes] = (span.start + span.len - remaining, len);
                lanes += 1;
                if lanes == PARALLEL_BLOCKS {
                    flush(&mut pads, &dst, lanes, data);
                    lanes = 0;
                }
                chunk = chunk.wrapping_add(1);
                remaining -= len;
            }
        }
        if lanes > 0 {
            flush(&mut pads, &dst, lanes, data);
        }
    }
}

/// XORs `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= *s;
    }
}
// lint: end

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: one `pad` call per chunk, as the pre-batching code
    /// did.  The batched paths must match this byte for byte.
    fn apply_reference(ks: &CtrKeystream, seed: u128, data: &mut [u8]) {
        for (chunk_idx, chunk) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let pad = ks.pad(seed, chunk_idx as u32);
            for (b, p) in chunk.iter_mut().zip(pad.iter()) {
                *b ^= *p;
            }
        }
    }

    #[test]
    fn roundtrip_various_lengths() {
        let ks = CtrKeystream::new([9u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 64, 320, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = original.clone();
            ks.apply(12345, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} should change under encryption");
            }
            ks.apply(12345, &mut data);
            assert_eq!(data, original);
        }
    }

    #[test]
    fn apply_matches_scalar_reference() {
        let ks = CtrKeystream::new([4u8; 16]);
        for len in [1usize, 8, 15, 16, 17, 312, 320, 1000] {
            let mut batched: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let mut scalar = batched.clone();
            ks.apply(777, &mut batched);
            apply_reference(&ks, 777, &mut scalar);
            assert_eq!(batched, scalar, "len {len}");
        }
    }

    /// NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt) through the batched
    /// engine: `pad_blocks` generates the keystream for the standard's
    /// counter sequence, which must turn the standard's plaintexts into its
    /// ciphertexts.  Under the forced-soft CI leg this exercises the
    /// bitsliced engine; by default whichever engine dispatch selected.
    #[test]
    fn nist_sp800_38a_ctr_vectors() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        // Initial counter block f0f1...feff = (seed << 32) | first_chunk.
        let seed: u128 = 0xf0f1_f2f3_f4f5_f6f7_f8f9_fafb;
        let first_chunk: u32 = 0xfcfd_feff;
        let plaintext: [u8; 64] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb,
            0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17,
            0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10,
        ];
        let expected: [u8; 64] = [
            0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
            0xb6, 0xce, 0x98, 0x06, 0xf6, 0x6b, 0x79, 0x70, 0xfd, 0xff, 0x86, 0x17, 0x18, 0x7b,
            0xb9, 0xff, 0xfd, 0xff, 0x5a, 0xe4, 0xdf, 0x3e, 0xdb, 0xd5, 0xd3, 0x5e, 0x5b, 0x4f,
            0x09, 0x02, 0x0d, 0xb0, 0x3e, 0xab, 0x1e, 0x03, 0x1d, 0xda, 0x2f, 0xbe, 0x03, 0xd1,
            0x79, 0x21, 0x70, 0xa0, 0xf3, 0x00, 0x9c, 0xee,
        ];
        let ks = CtrKeystream::new(key);
        let mut data = plaintext;
        let mut pads = [0u8; 64];
        ks.pad_blocks(seed, first_chunk, &mut pads);
        xor_in_place(&mut data, &pads);
        assert_eq!(data, expected);
        // The per-chunk pads agree with the single-block path.
        for i in 0..4u32 {
            assert_eq!(
                &pads[16 * i as usize..16 * (i as usize + 1)],
                &ks.pad(seed, first_chunk + i)
            );
        }
    }

    /// Seeded property loop: batch-vs-scalar keystream equivalence on odd
    /// lengths, unaligned offsets, multiple spans per buffer, high-bit
    /// seeds, and chunk counters crossing byte-carry boundaries.
    #[test]
    fn batch_equals_scalar_on_awkward_spans() {
        let ks = CtrKeystream::new([0xC3u8; 16]);
        // Tiny xorshift so the loop is seeded and self-contained.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let buf_len = 1 + (rng() % 5000) as usize;
            let mut expected: Vec<u8> = (0..buf_len).map(|_| rng() as u8).collect();
            let mut actual = expected.clone();
            let mut spans = Vec::new();
            let mut cursor = 0usize;
            while cursor < buf_len {
                let start = cursor + (rng() % 40) as usize; // unaligned gaps
                if start >= buf_len {
                    break;
                }
                let len = 1 + (rng() % 700) as usize;
                let len = len.min(buf_len - start);
                // High-bit seeds exercise the full 96-bit seed field.
                let seed = (u128::from(rng()) << 64) | u128::from(rng());
                spans.push(KeystreamSpan { seed, start, len });
                cursor = start + len;
            }
            for span in &spans {
                apply_reference(
                    &ks,
                    span.seed,
                    &mut expected[span.start..span.start + span.len],
                );
            }
            ks.apply_batch(&spans, &mut actual);
            assert_eq!(actual, expected, "round {round}, spans {spans:?}");
        }
    }

    /// Chunk counters are 32-bit and the pad construction must agree between
    /// the batched and single-block paths across carry/wrap boundaries.
    #[test]
    fn pad_blocks_crosses_counter_boundaries() {
        let ks = CtrKeystream::new([0x11u8; 16]);
        for first_chunk in [0u32, 0xFE, 0xFFFE, 0x00FF_FFFE, u32::MAX - 1] {
            let mut out = [0u8; 4 * BLOCK_BYTES + 5]; // partial tail too
            ks.pad_blocks(7, first_chunk, &mut out);
            for i in 0..4u32 {
                assert_eq!(
                    &out[16 * i as usize..16 * (i as usize + 1)],
                    &ks.pad(7, first_chunk.wrapping_add(i)),
                    "first_chunk {first_chunk:#x} + {i}"
                );
            }
            let tail_pad = ks.pad(7, first_chunk.wrapping_add(4));
            assert_eq!(&out[64..], &tail_pad[..5]);
        }
    }

    #[test]
    fn different_seeds_give_different_pads() {
        let ks = CtrKeystream::new([9u8; 16]);
        assert_ne!(ks.pad(1, 0), ks.pad(2, 0));
        assert_ne!(ks.pad(1, 0), ks.pad(1, 1));
    }

    #[test]
    fn pad_reuse_leaks_xor_of_plaintexts() {
        // This is exactly the attack of §6.4: if the same (seed, chunk) pad is
        // used for two plaintexts, their XOR is revealed.
        let ks = CtrKeystream::new([1u8; 16]);
        let d1 = [0x11u8; 16];
        let d2 = [0x2eu8; 16];
        let mut c1 = d1;
        let mut c2 = d2;
        ks.apply(99, &mut c1);
        ks.apply(99, &mut c2);
        let mut xor = [0u8; 16];
        for i in 0..16 {
            xor[i] = c1[i] ^ c2[i];
        }
        let mut expected = [0u8; 16];
        for i in 0..16 {
            expected[i] = d1[i] ^ d2[i];
        }
        assert_eq!(xor, expected);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn apply_batch_rejects_out_of_range_span() {
        let ks = CtrKeystream::new([1u8; 16]);
        let mut data = [0u8; 16];
        ks.apply_batch(
            &[KeystreamSpan {
                seed: 0,
                start: 8,
                len: 16,
            }],
            &mut data,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_in_place_rejects_length_mismatch() {
        let mut a = [0u8; 4];
        xor_in_place(&mut a, &[0u8; 5]);
    }
}
