//! The hardware AES engine: AES-NI via `core::arch::x86_64`.
//!
//! Compiled only on x86_64; selected at runtime by
//! [`crate::aes::Aes128`] when `is_x86_feature_detected!("aes")` reports
//! support and the soft engine has not been forced (see
//! [`crate::aes::EngineKind`]).  Batches of eight blocks are encrypted with
//! the rounds interleaved across blocks so the ~4-cycle `AESENC` latency is
//! hidden behind the other lanes — the software analogue of the paper's
//! pipelined AES unit (§7.2.1).
//!
//! This is the crate's only unsafe island: the intrinsics themselves plus
//! the `#[target_feature]` calls, both guarded by the runtime CPUID check at
//! the dispatch site.

#![allow(unsafe_code)]

use crate::aes::{BLOCK_BYTES, ROUNDS};
use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_setzero_si128,
    _mm_storeu_si128, _mm_xor_si128,
};

/// Whether the CPU supports the AES-NI instructions (plus SSE2, which every
/// x86_64 CPU has but we check for completeness).
pub(crate) fn detected() -> bool {
    std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
}

/// Encrypts `data` (a multiple of 16 bytes) in place.
///
/// # Safety preconditions (checked by the caller)
///
/// Must only be called after [`detected`] returned `true`.
// lint: ct-scope, no-alloc
pub(crate) fn encrypt_blocks(round_keys: &[[u8; 16]; ROUNDS + 1], data: &mut [u8]) {
    debug_assert!(data.len().is_multiple_of(BLOCK_BYTES));
    // SAFETY: the dispatch site verified AES-NI support via `detected()`.
    unsafe { encrypt_blocks_impl(round_keys, data) }
}

// SAFETY: caller must ensure the CPU supports AES-NI and SSE2 (the public
// wrapper checks `detected()`); all pointer arithmetic stays inside `data`'s
// whole-block chunks via the safe `chunks_exact_mut` iterators below.
#[target_feature(enable = "aes,sse2")]
unsafe fn encrypt_blocks_impl(round_keys: &[[u8; 16]; ROUNDS + 1], data: &mut [u8]) {
    let keys = load_keys(round_keys);

    // Eight blocks at a time, rounds interleaved for instruction-level
    // parallelism.
    let mut chunks = data.chunks_exact_mut(8 * BLOCK_BYTES);
    for chunk in &mut chunks {
        let mut s = [_mm_setzero_si128(); 8];
        for (i, lane) in s.iter_mut().enumerate() {
            *lane = _mm_loadu_si128(chunk.as_ptr().add(i * BLOCK_BYTES).cast());
            *lane = _mm_xor_si128(*lane, keys[0]);
        }
        for key in keys.iter().take(ROUNDS).skip(1) {
            for lane in s.iter_mut() {
                *lane = _mm_aesenc_si128(*lane, *key);
            }
        }
        for (i, lane) in s.iter_mut().enumerate() {
            *lane = _mm_aesenclast_si128(*lane, keys[ROUNDS]);
            _mm_storeu_si128(chunk.as_mut_ptr().add(i * BLOCK_BYTES).cast(), *lane);
        }
    }
    for block in chunks.into_remainder().chunks_exact_mut(BLOCK_BYTES) {
        let mut s = _mm_loadu_si128(block.as_ptr().cast());
        s = _mm_xor_si128(s, keys[0]);
        for key in keys.iter().take(ROUNDS).skip(1) {
            s = _mm_aesenc_si128(s, *key);
        }
        s = _mm_aesenclast_si128(s, keys[ROUNDS]);
        _mm_storeu_si128(block.as_mut_ptr().cast(), s);
    }
}

// SAFETY: caller must ensure SSE2 is available (implied by the AES-NI
// detection at the dispatch site); the loads read exactly 16 bytes from each
// 16-byte round-key array via unaligned-tolerant `_mm_loadu_si128`.
#[target_feature(enable = "sse2")]
unsafe fn load_keys(round_keys: &[[u8; 16]; ROUNDS + 1]) -> [__m128i; ROUNDS + 1] {
    let mut keys = [_mm_setzero_si128(); ROUNDS + 1];
    for (k, rk) in keys.iter_mut().zip(round_keys.iter()) {
        *k = _mm_loadu_si128(rk.as_ptr().cast());
    }
    keys
}
// lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    fn skip_without_aesni() -> bool {
        if detected() {
            false
        } else {
            eprintln!("AES-NI not available; skipping hardware-engine test");
            true
        }
    }

    #[test]
    fn fips197_appendix_c1_through_aesni() {
        if skip_without_aesni() {
            return;
        }
        let aes = Aes128::new([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let mut data = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        encrypt_blocks(aes.round_keys(), &mut data);
        assert_eq!(
            data,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a,
            ]
        );
    }

    #[test]
    fn batched_lanes_agree_with_scalar_cipher() {
        if skip_without_aesni() {
            return;
        }
        let aes = Aes128::new([0x77u8; 16]);
        // 21 blocks: two full 8-lane groups plus a 5-block tail.
        let mut data: Vec<u8> = (0..21 * 16).map(|i| (i % 251) as u8).collect();
        let expected: Vec<u8> = data
            .chunks_exact(16)
            .flat_map(|b| aes.encrypt_block_scalar(b.try_into().unwrap()))
            .collect();
        encrypt_blocks(aes.round_keys(), &mut data);
        assert_eq!(data, expected);
    }
}
