//! DRAM activity statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::DramSim`] over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Number of read requests (of any size).
    pub read_requests: u64,
    /// Number of write requests (of any size).
    pub write_requests: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Bursts that hit an open row buffer.
    pub row_hits: u64,
    /// Bursts that required precharge/activate.
    pub row_misses: u64,
}

impl DramStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Row-buffer hit rate over all bursts, or `None` if no bursts were
    /// issued.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            None
        } else {
            Some(self.row_hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_nonempty() {
        let mut s = DramStats::default();
        assert_eq!(s.row_hit_rate(), None);
        s.row_hits = 3;
        s.row_misses = 1;
        assert_eq!(s.row_hit_rate(), Some(0.75));
    }

    #[test]
    fn total_bytes_sums_both_directions() {
        let s = DramStats {
            bytes_read: 10,
            bytes_written: 5,
            ..DramStats::default()
        };
        assert_eq!(s.total_bytes(), 15);
    }
}
