//! Physical address to (channel, rank, bank, row, column) mapping.
//!
//! The mapping determines how much channel/bank parallelism a streaming ORAM
//! path read can exploit.  The default interleaves channels at burst (64 B)
//! granularity and banks at row granularity, which matches how DRAMSim2's
//! default address mapping behaves for long sequential streams: consecutive
//! bursts alternate across channels, and consecutive rows move to a different
//! bank so activates overlap with transfers.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// A decomposed DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Column (bus-word) index within the row.
    pub column: usize,
}

/// Maps physical byte addresses to DRAM locations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressMapping {
    channels: usize,
    ranks: usize,
    banks: usize,
    rows: usize,
    columns: usize,
    bus_bytes: usize,
    burst_bytes: usize,
}

impl AddressMapping {
    /// Builds the mapping for a DRAM configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        Self {
            channels: cfg.channels,
            ranks: cfg.ranks_per_channel,
            banks: cfg.banks_per_rank,
            rows: cfg.rows_per_bank,
            columns: cfg.columns_per_row,
            bus_bytes: cfg.bus_bytes,
            burst_bytes: cfg.burst_bytes(),
        }
    }

    /// Decomposes a physical byte address.
    ///
    /// Bit layout (from least significant): byte-in-burst, channel,
    /// column-high (bursts within a row), bank, rank, row.  Addresses beyond
    /// the configured capacity wrap around (the ORAM layouts in this
    /// repository always stay within capacity; wrapping keeps the model total).
    pub fn decompose(&self, addr: u64) -> DramLocation {
        let bursts_per_row = (self.columns * self.bus_bytes / self.burst_bytes).max(1);
        let mut a = addr / self.burst_bytes as u64;
        let channel = (a % self.channels as u64) as usize;
        a /= self.channels as u64;
        let burst_in_row = (a % bursts_per_row as u64) as usize;
        a /= bursts_per_row as u64;
        let bank = (a % self.banks as u64) as usize;
        a /= self.banks as u64;
        let rank = (a % self.ranks as u64) as usize;
        a /= self.ranks as u64;
        let row = (a % self.rows as u64) as usize;
        let offset_in_burst = usize::try_from(addr % self.burst_bytes as u64)
            .expect("burst offset bounded by burst_bytes fits usize");
        let column =
            burst_in_row * (self.burst_bytes / self.bus_bytes) + offset_in_burst / self.bus_bytes;
        DramLocation {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }

    /// Flat bank identifier (across channels and ranks) for indexing bank
    /// state arrays.
    pub fn flat_bank_index(&self, loc: &DramLocation) -> usize {
        (loc.channel * self.ranks + loc.rank) * self.banks + loc.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_bursts_alternate_channels() {
        let cfg = DramConfig::default();
        let map = AddressMapping::new(&cfg);
        let a = map.decompose(0);
        let b = map.decompose(64);
        let c = map.decompose(128);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(c.channel, 0);
        // Within the same row while the stream is short.
        assert_eq!(a.row, c.row);
        assert_eq!(a.bank, c.bank);
    }

    #[test]
    fn sequential_stream_stays_in_row_until_row_bytes_consumed() {
        let cfg = DramConfig::default();
        let map = AddressMapping::new(&cfg);
        // With 2 channels and 8 KiB rows, the stream covers 16 KiB before the
        // per-channel row changes.
        let row_span = cfg.row_bytes() as u64 * cfg.channels as u64;
        let first = map.decompose(0);
        let last_in_row = map.decompose(row_span - 64);
        let next_row = map.decompose(row_span);
        assert_eq!(first.row, last_in_row.row);
        assert_eq!(first.bank, last_in_row.bank);
        assert!(next_row.bank != first.bank || next_row.row != first.row);
    }

    #[test]
    fn flat_bank_index_is_unique_per_bank() {
        let cfg = DramConfig {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 4,
            ..DramConfig::default()
        };
        let map = AddressMapping::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for ch in 0..2 {
            for rk in 0..2 {
                for bk in 0..4 {
                    let loc = DramLocation {
                        channel: ch,
                        rank: rk,
                        bank: bk,
                        row: 0,
                        column: 0,
                    };
                    assert!(seen.insert(map.flat_bank_index(&loc)));
                }
            }
        }
        assert_eq!(seen.len(), cfg.total_banks());
    }

    #[test]
    fn decompose_is_within_bounds() {
        let cfg = DramConfig::default();
        let map = AddressMapping::new(&cfg);
        for addr in (0..(1u64 << 34)).step_by(123_456_789) {
            let loc = map.decompose(addr);
            assert!(loc.channel < cfg.channels);
            assert!(loc.rank < cfg.ranks_per_channel);
            assert!(loc.bank < cfg.banks_per_rank);
            assert!(loc.row < cfg.rows_per_bank);
            assert!(loc.column < cfg.columns_per_row);
        }
    }
}
