//! The subtree ORAM-tree layout of Ren et al. \[26\].
//!
//! A naive level-order layout of the ORAM tree scatters the buckets of a path
//! across DRAM rows, so every bucket read is a row miss.  The subtree layout
//! groups each `k`-level subtree contiguously: a path of `L+1` buckets then
//! touches only `⌈(L+1)/k⌉` distinct regions, and the buckets inside each
//! region stream at row-buffer-hit bandwidth.  The paper relies on this layout
//! to reach "nearly peak DRAM bandwidth" (§7.1.1).

use serde::{Deserialize, Serialize};

/// Maps ORAM tree buckets `(level, index)` to physical byte addresses.
///
/// # Examples
///
/// ```
/// use dram_sim::SubtreeLayout;
///
/// // A 21-level tree (L = 20) of 320-byte buckets, grouped 4 levels/subtree.
/// let layout = SubtreeLayout::new(21, 320, 4, 0);
/// let a = layout.bucket_address(0, 0);
/// let b = layout.bucket_address(1, 1);
/// assert_ne!(a, b);
/// assert!(layout.total_bytes() > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubtreeLayout {
    /// Total number of tree levels (`L + 1`).
    levels: u32,
    /// Size of one bucket in bytes (already padded to the DRAM burst multiple).
    bucket_bytes: u64,
    /// Levels per subtree (`k`).
    subtree_levels: u32,
    /// Base physical address of the ORAM region.
    base: u64,
    /// Per level-group: (first level, levels in group, buckets per subtree,
    /// number of subtrees, starting bucket offset of the group).
    groups: Vec<GroupLayout>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GroupLayout {
    first_level: u32,
    /// Levels in this group; kept for layout debugging even though address
    /// arithmetic only needs `first_level` and the counts below.
    #[allow(dead_code)]
    levels: u32,
    buckets_per_subtree: u64,
    subtree_count: u64,
    bucket_offset: u64,
}

impl SubtreeLayout {
    /// Builds a layout for a tree with `levels` levels of `bucket_bytes`-byte
    /// buckets, grouping `subtree_levels` levels per subtree, placed at
    /// physical address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`, `subtree_levels == 0`, or `bucket_bytes == 0`.
    pub fn new(levels: u32, bucket_bytes: u64, subtree_levels: u32, base: u64) -> Self {
        assert!(levels > 0, "tree must have at least one level");
        assert!(subtree_levels > 0, "subtrees must have at least one level");
        assert!(bucket_bytes > 0, "buckets must be non-empty");
        let mut groups = Vec::new();
        let mut first_level = 0u32;
        let mut bucket_offset = 0u64;
        while first_level < levels {
            let group_levels = subtree_levels.min(levels - first_level);
            let buckets_per_subtree = (1u64 << group_levels) - 1;
            let subtree_count = 1u64 << first_level;
            groups.push(GroupLayout {
                first_level,
                levels: group_levels,
                buckets_per_subtree,
                subtree_count,
                bucket_offset,
            });
            bucket_offset += buckets_per_subtree * subtree_count;
            first_level += group_levels;
        }
        Self {
            levels,
            bucket_bytes,
            subtree_levels,
            base,
            groups,
        }
    }

    /// Total number of tree levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Levels per subtree.
    pub fn subtree_levels(&self) -> u32 {
        self.subtree_levels
    }

    /// Total bytes occupied by the tree under this layout.
    pub fn total_bytes(&self) -> u64 {
        let last = self.groups.last().expect("at least one group");
        (last.bucket_offset + last.buckets_per_subtree * last.subtree_count) * self.bucket_bytes
    }

    /// Physical byte address of the bucket at `(level, index_in_level)`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels` or `index_in_level >= 2^level`.
    pub fn bucket_address(&self, level: u32, index_in_level: u64) -> u64 {
        assert!(level < self.levels, "level {level} out of range");
        assert!(
            index_in_level < (1u64 << level),
            "bucket index {index_in_level} out of range for level {level}"
        );
        let group = self
            .groups
            .iter()
            .rev()
            .find(|g| g.first_level <= level)
            .expect("level is covered by some group");
        let local_level = level - group.first_level;
        // Ancestor of this bucket at the group's first level identifies which
        // subtree it belongs to.
        let subtree_index = index_in_level >> local_level;
        let local_index = index_in_level & ((1u64 << local_level) - 1);
        let offset_in_subtree = ((1u64 << local_level) - 1) + local_index;
        let bucket_linear =
            group.bucket_offset + subtree_index * group.buckets_per_subtree + offset_in_subtree;
        self.base + bucket_linear * self.bucket_bytes
    }

    /// The physical addresses of every bucket on the path to `leaf`, root
    /// first.  `leaf` must be in `[0, 2^(levels-1))`.
    pub fn path_addresses(&self, leaf: u64) -> Vec<u64> {
        (0..self.levels)
            .map(|level| {
                let index = leaf >> (self.levels - 1 - level);
                self.bucket_address(level, index)
            })
            .collect()
    }

    /// Physical byte address of the bucket with linear heap-order index
    /// `linear` (root is 0, the bucket at `(level, i)` is `2^level - 1 + i`)
    /// — the indexing convention of the Path ORAM backend, whose file-backed
    /// tree store lays buckets out with this layout.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is outside the tree.
    pub fn linear_bucket_address(&self, linear: u64) -> u64 {
        let level = 63 - (linear + 1).leading_zeros();
        let index_in_level = linear + 1 - (1u64 << level);
        self.bucket_address(level, index_in_level)
    }

    /// A naive level-order layout of the same tree, for ablation comparisons:
    /// bucket `(level, index)` is simply placed at `base + (2^level - 1 +
    /// index) * bucket_bytes`.
    pub fn naive_bucket_address(&self, level: u32, index_in_level: u64) -> u64 {
        assert!(level < self.levels);
        self.base + (((1u64 << level) - 1) + index_in_level) * self.bucket_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_bucket_addresses_are_distinct_and_aligned() {
        let layout = SubtreeLayout::new(10, 320, 4, 0);
        let mut seen = HashSet::new();
        for level in 0..10u32 {
            for idx in 0..(1u64 << level) {
                let addr = layout.bucket_address(level, idx);
                assert_eq!(addr % 320, 0);
                assert!(seen.insert(addr), "duplicate address {addr}");
                assert!(addr < layout.total_bytes());
            }
        }
        assert_eq!(seen.len(), (1 << 10) - 1);
    }

    #[test]
    fn total_bytes_equals_bucket_count_times_size() {
        for levels in [1u32, 3, 7, 13] {
            let layout = SubtreeLayout::new(levels, 64, 4, 0);
            assert_eq!(layout.total_bytes(), ((1u64 << levels) - 1) * 64);
        }
    }

    #[test]
    fn path_has_one_bucket_per_level_and_is_ancestor_consistent() {
        let layout = SubtreeLayout::new(12, 320, 4, 0);
        let path = layout.path_addresses(1234 & ((1 << 11) - 1));
        assert_eq!(path.len(), 12);
        // Root is always bucket (0,0).
        assert_eq!(path[0], layout.bucket_address(0, 0));
    }

    #[test]
    fn subtree_layout_is_contiguous_within_a_subtree() {
        // With k = 4 the top 4 levels (15 buckets) must occupy one contiguous
        // region starting at base.
        let layout = SubtreeLayout::new(12, 100, 4, 0);
        let mut addrs = Vec::new();
        for level in 0..4u32 {
            for idx in 0..(1u64 << level) {
                addrs.push(layout.bucket_address(level, idx));
            }
        }
        addrs.sort_unstable();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(*a, i as u64 * 100);
        }
    }

    #[test]
    fn path_touches_few_regions_under_subtree_layout() {
        // Count how many distinct 8 KiB rows a path touches under the subtree
        // layout vs the naive layout; the subtree layout must touch no more.
        let levels = 21u32;
        let bucket = 320u64;
        let layout = SubtreeLayout::new(levels, bucket, 5, 0);
        let row = 8192u64;
        let leaf = 0b1010_1010_1010_1010_1010u64 & ((1 << (levels - 1)) - 1);
        let subtree_rows: HashSet<u64> = layout
            .path_addresses(leaf)
            .iter()
            .map(|a| a / row)
            .collect();
        let naive_rows: HashSet<u64> = (0..levels)
            .map(|level| {
                let idx = leaf >> (levels - 1 - level);
                layout.naive_bucket_address(level, idx) / row
            })
            .collect();
        assert!(subtree_rows.len() <= naive_rows.len());
        // Each of the ceil(levels/k) subtrees on the path spans at most
        // ceil(subtree_bytes/row)+1 rows.
        let subtree_bytes = ((1u64 << 5) - 1) * bucket;
        let rows_per_subtree = subtree_bytes.div_ceil(row) + 1;
        assert!(subtree_rows.len() as u64 <= u64::from(levels.div_ceil(5)) * rows_per_subtree);
    }

    #[test]
    fn base_offset_shifts_all_addresses() {
        let a = SubtreeLayout::new(8, 64, 3, 0);
        let b = SubtreeLayout::new(8, 64, 3, 1 << 20);
        assert_eq!(b.bucket_address(3, 5) - a.bucket_address(3, 5), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_bucket_index() {
        let layout = SubtreeLayout::new(4, 64, 2, 0);
        let _ = layout.bucket_address(2, 4);
    }

    // ------------------------------------------------------------------
    // Property tests: the invariants the file-backed ORAM tree store now
    // depends on.  Seeded loops over many geometries, no external crates.
    // ------------------------------------------------------------------

    /// Seeded xorshift so the geometry sweep is deterministic.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn property_bucket_to_offset_is_a_bijection_within_bounds() {
        // For every (levels, k, bucket_bytes) sampled, the linear-index
        // mapping must hit each multiple of bucket_bytes in
        // [0, total_bytes) exactly once: no collisions, no holes, in bounds.
        let mut seed = 0x5EED_1A70_A11C_E001u64;
        for _ in 0..40 {
            let levels = 1 + (xorshift(&mut seed) % 14) as u32;
            let k = 1 + (xorshift(&mut seed) % 6) as u32;
            let bucket = 16 * (1 + xorshift(&mut seed) % 40);
            let layout = SubtreeLayout::new(levels, bucket, k, 0);
            let num_buckets = (1u64 << levels) - 1;
            assert_eq!(layout.total_bytes(), num_buckets * bucket);
            let mut seen = HashSet::new();
            for linear in 0..num_buckets {
                let addr = layout.linear_bucket_address(linear);
                assert!(
                    addr < layout.total_bytes(),
                    "L={levels} k={k} b={bucket}: address {addr} out of bounds"
                );
                assert_eq!(addr % bucket, 0, "address must be bucket-aligned");
                assert!(
                    seen.insert(addr),
                    "L={levels} k={k} b={bucket}: duplicate address {addr}"
                );
            }
            // num_buckets distinct aligned in-bounds addresses over a space
            // of exactly num_buckets slots: the mapping is onto as well.
            assert_eq!(seen.len() as u64, num_buckets);
        }
    }

    #[test]
    fn property_linear_address_agrees_with_coordinate_address() {
        let layout = SubtreeLayout::new(11, 96, 3, 1 << 16);
        for level in 0..11u32 {
            for idx in 0..(1u64 << level) {
                let linear = ((1u64 << level) - 1) + idx;
                assert_eq!(
                    layout.linear_bucket_address(linear),
                    layout.bucket_address(level, idx)
                );
            }
        }
    }

    #[test]
    fn property_path_touches_at_most_ceil_levels_over_k_contiguous_extents() {
        // Sort a path's bucket addresses and count maximal runs separated by
        // more than one subtree span: each k-level subtree on the path is one
        // contiguous region of at most (2^k - 1) buckets, so a root-to-leaf
        // path must fall into at most ceil(levels / k) such extents.
        let mut seed = 0xD15C_0F5E_7B1A_0001u64;
        for _ in 0..30 {
            let levels = 2 + (xorshift(&mut seed) % 16) as u32;
            let k = 1 + (xorshift(&mut seed) % 6) as u32;
            let bucket = 64u64;
            let layout = SubtreeLayout::new(levels, bucket, k, 0);
            let subtree_span = ((1u64 << k.min(levels)) - 1) * bucket;
            for _ in 0..50 {
                let leaf = xorshift(&mut seed) & ((1u64 << (levels - 1)) - 1);
                let mut addrs = layout.path_addresses(leaf);
                addrs.sort_unstable();
                let mut extents = 1u64;
                for pair in addrs.windows(2) {
                    if pair[1] - pair[0] > subtree_span {
                        extents += 1;
                    }
                }
                let bound = u64::from(levels.div_ceil(k));
                assert!(
                    extents <= bound,
                    "L={levels} k={k} leaf={leaf}: {extents} extents exceeds ceil(levels/k)={bound}"
                );
            }
        }
    }
}
