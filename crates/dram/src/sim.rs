//! The cycle-level DRAM model and a closed-form bandwidth model.

use crate::address::AddressMapping;
use crate::bank::BankState;
use crate::config::DramConfig;
use crate::stats::DramStats;

/// Cycle-level multi-channel DRAM model.
///
/// Each request is broken into 64-byte bursts.  Bursts are routed to their
/// (channel, bank) by the [`AddressMapping`]; each bank tracks its open row
/// and each channel its data-bus occupancy.  The completion time of a request
/// is when its last burst finishes on the bus.
///
/// The model is intentionally simpler than DRAMSim2 (no refresh, no
/// write-to-read turnaround, FR-FCFS approximated by in-order issue per
/// request) but reproduces the first-order behaviour the paper depends on:
/// streaming path reads run near peak bandwidth thanks to the subtree layout,
/// and latency scales sub-linearly with channel count due to bank/row
/// conflicts (Table 2).
#[derive(Debug, Clone)]
pub struct DramSim {
    cfg: DramConfig,
    mapping: AddressMapping,
    banks: Vec<BankState>,
    /// Next free DRAM cycle of each channel's data bus.
    channel_free: Vec<u64>,
    stats: DramStats,
}

impl DramSim {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let mapping = AddressMapping::new(&cfg);
        let banks = vec![BankState::default(); cfg.total_banks()];
        let channel_free = vec![0u64; cfg.channels];
        Self {
            cfg,
            mapping,
            banks,
            channel_free,
            stats: DramStats::default(),
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (bank/bus state is retained).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Issues a request for `bytes` bytes starting at physical address `addr`
    /// at DRAM cycle `now`, returning the DRAM cycle at which the last burst
    /// completes.
    ///
    /// `is_write` only affects statistics; timing is symmetric in this model.
    pub fn access(&mut self, addr: u64, bytes: usize, is_write: bool, now: u64) -> u64 {
        if bytes == 0 {
            return now;
        }
        let burst = self.cfg.burst_bytes() as u64;
        let first = addr / burst * burst;
        let last = (addr + bytes as u64 - 1) / burst * burst;
        let mut completion = now;
        let issue = now + self.cfg.controller_latency;
        let mut cursor = first;
        while cursor <= last {
            let loc = self.mapping.decompose(cursor);
            let bank_idx = self.mapping.flat_bank_index(&loc);
            let access = self.banks[bank_idx].access(loc.row, issue, &self.cfg);
            if access.row_hit {
                self.stats.row_hits += 1;
            } else {
                self.stats.row_misses += 1;
            }
            // The burst must wait for both the bank (CAS done) and the
            // channel data bus.
            let bus_start = access.data_start.max(self.channel_free[loc.channel]);
            let bus_end = bus_start + self.cfg.burst_cycles();
            self.channel_free[loc.channel] = bus_end;
            completion = completion.max(bus_end);
            cursor += burst;
        }
        if is_write {
            self.stats.write_requests += 1;
            self.stats.bytes_written += bytes as u64;
        } else {
            self.stats.read_requests += 1;
            self.stats.bytes_read += bytes as u64;
        }
        completion
    }

    /// Issues a request and returns the latency in **processor** cycles,
    /// assuming the request is issued when the memory system is idle
    /// (`now = 0` relative time).  Convenience for latency studies.
    pub fn isolated_latency_cpu_cycles(&mut self, addr: u64, bytes: usize, is_write: bool) -> u64 {
        // Advance a private copy so repeated calls don't interfere through
        // bus state.
        let mut probe = self.clone();
        let done = probe.access(addr, bytes, is_write, 0);
        self.stats = probe.stats;
        self.cfg.dram_to_cpu_cycles(done)
    }
}

/// A closed-form latency model: `latency = fixed + bytes / effective_bandwidth`.
///
/// Used for very large parameter sweeps (e.g. Figure 7's 64 GB ORAM) where
/// cycle-level simulation of every burst is unnecessary.  The effective
/// bandwidth is the configured peak de-rated by a row-buffer efficiency
/// factor, which the cycle-level model can be used to calibrate.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    cfg: DramConfig,
    /// Fraction of peak bandwidth achieved for streaming ORAM paths.
    pub efficiency: f64,
    /// Fixed per-request latency in processor cycles (command/queueing).
    pub fixed_cpu_cycles: u64,
}

impl BandwidthModel {
    /// Creates the model.  `efficiency` in (0, 1]; the paper's subtree layout
    /// achieves "nearly peak" bandwidth, empirically ~0.75–0.9 for the default
    /// geometry.
    pub fn new(cfg: DramConfig, efficiency: f64, fixed_cpu_cycles: u64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0,1]"
        );
        Self {
            cfg,
            efficiency,
            fixed_cpu_cycles,
        }
    }

    /// Latency in processor cycles to transfer `bytes` bytes.
    pub fn latency_cpu_cycles(&self, bytes: u64) -> u64 {
        let seconds = bytes as f64 / (self.cfg.peak_bandwidth_bytes_per_sec() * self.efficiency);
        let cycles = seconds * self.cfg.cpu_clock_mhz * 1e6;
        self.fixed_cpu_cycles + cycles.ceil() as u64
    }

    /// The underlying DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_byte_access_is_free() {
        let mut dram = DramSim::new(DramConfig::default());
        assert_eq!(dram.access(0, 0, false, 17), 17);
    }

    #[test]
    fn sequential_stream_achieves_high_row_hit_rate() {
        let mut dram = DramSim::new(DramConfig::default());
        let mut now = 0;
        for i in 0..256u64 {
            now = dram.access(i * 64, 64, false, now);
        }
        let hit_rate = dram.stats().row_hit_rate().unwrap();
        assert!(hit_rate > 0.9, "hit rate {hit_rate}");
    }

    #[test]
    fn random_accesses_mostly_miss_rows() {
        let mut dram = DramSim::new(DramConfig::default());
        let mut now = 0;
        let mut addr = 1u64;
        for _ in 0..256 {
            // Jump by a large odd stride to touch many rows.
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = addr % (1 << 30);
            now = dram.access(a, 64, false, now);
        }
        let hit_rate = dram.stats().row_hit_rate().unwrap();
        assert!(hit_rate < 0.3, "hit rate {hit_rate}");
    }

    #[test]
    fn large_transfer_latency_close_to_peak_bandwidth() {
        // Reading 16 KB over 2 channels at ~21.3 GB/s should take ~750 ns plus
        // fixed overheads; allow generous slack but require the right order of
        // magnitude.
        let cfg = DramConfig::default();
        let mut dram = DramSim::new(cfg.clone());
        let done = dram.access(0, 16_000, false, 0);
        let ns = cfg.dram_cycles_to_ns(done);
        assert!(ns > 600.0 && ns < 1600.0, "16KB transfer took {ns} ns");
    }

    #[test]
    fn more_channels_reduce_latency_sublinearly() {
        let mut latencies = Vec::new();
        for channels in [1usize, 2, 4, 8] {
            let cfg = DramConfig {
                channels,
                ..DramConfig::default()
            };
            let mut dram = DramSim::new(cfg);
            let done = dram.access(0, 16_000, false, 0);
            latencies.push(done);
        }
        // Monotonically decreasing...
        assert!(latencies.windows(2).all(|w| w[1] < w[0]), "{latencies:?}");
        // ...but 8 channels is less than 8x faster than 1 (sub-linear), as in
        // Table 2.
        assert!(latencies[0] < 8 * latencies[3], "{latencies:?}");
    }

    #[test]
    fn writes_update_write_stats() {
        let mut dram = DramSim::new(DramConfig::default());
        dram.access(0, 128, true, 0);
        assert_eq!(dram.stats().write_requests, 1);
        assert_eq!(dram.stats().bytes_written, 128);
        assert_eq!(dram.stats().bytes_read, 0);
    }

    #[test]
    fn bandwidth_model_latency_scales_linearly_in_bytes() {
        let model = BandwidthModel::new(DramConfig::default(), 0.8, 20);
        let l1 = model.latency_cpu_cycles(16_000);
        let l2 = model.latency_cpu_cycles(32_000);
        assert!(l2 > l1);
        let marginal = (l2 - l1) as f64;
        let expected = 16_000.0 / (model.config().peak_bandwidth_bytes_per_sec() * 0.8)
            * model.config().cpu_clock_mhz
            * 1e6;
        assert!((marginal - expected).abs() / expected < 0.01);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bandwidth_model_rejects_bad_efficiency() {
        let _ = BandwidthModel::new(DramConfig::default(), 0.0, 0);
    }
}
