//! A DDR3-style DRAM timing model for the Freecursive ORAM reproduction.
//!
//! The paper models main memory with DRAMSim2's default DDR3 Micron
//! configuration: 8 banks, 16384 rows and 1024 columns per row, 667 MHz DDR
//! with a 64-bit bus (≈10.67 GB/s peak per channel), and lays the ORAM tree
//! out with the *subtree layout* of Ren et al. \[26\] so a path read achieves
//! close to peak bandwidth (§7.1.1–§7.1.2).  The same subtree layout maps
//! buckets to file offsets in `path-oram`'s file store — see
//! `docs/ARCHITECTURE.md` at the workspace root.
//!
//! This crate provides:
//!
//! * [`DramConfig`] — geometry and timing parameters (defaults mirror the
//!   paper's configuration).
//! * [`DramSim`] — a cycle-level model with per-bank row-buffer state and
//!   per-channel data-bus occupancy.  Requests are streams of 64-byte bursts.
//! * [`subtree::SubtreeLayout`] — the mapping from ORAM tree buckets to
//!   physical addresses that keeps each k-level subtree contiguous.
//! * [`BandwidthModel`] — a closed-form latency model (`bytes / effective
//!   bandwidth + fixed AMAT`) for very large parameter sweeps where the
//!   cycle-level model is unnecessarily slow.
//!
//! # Examples
//!
//! ```
//! use dram_sim::{DramConfig, DramSim};
//!
//! let mut dram = DramSim::new(DramConfig::default());
//! // Read 4 KiB starting at physical address 0, issued at cycle 0.
//! let done = dram.access(0, 4096, false, 0);
//! assert!(done > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bank;
pub mod config;
pub mod sim;
pub mod stats;
pub mod subtree;

pub use address::{AddressMapping, DramLocation};
pub use config::DramConfig;
pub use sim::{BandwidthModel, DramSim};
pub use stats::DramStats;
pub use subtree::SubtreeLayout;
