//! DRAM geometry and timing configuration.

use serde::{Deserialize, Serialize};

/// Geometry and timing parameters of the simulated DDR3 memory system.
///
/// Defaults follow the paper's DRAMSim2 configuration (§7.1.1): per channel
/// 8 banks, 16384 rows, 1024 columns/row, 64-bit bus at 667 MHz DDR
/// (≈10.67 GB/s peak), and DDR3-1333-like CL/tRCD/tRP of 10 DRAM cycles.
///
/// # Examples
///
/// ```
/// use dram_sim::DramConfig;
///
/// let cfg = DramConfig { channels: 2, ..DramConfig::default() };
/// assert!((cfg.peak_bandwidth_bytes_per_sec() / 1e9 - 21.3).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent DRAM channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Columns per row; each column holds one bus-width word (8 bytes).
    pub columns_per_row: usize,
    /// Data bus width in bytes (64-bit bus = 8 bytes).
    pub bus_bytes: usize,
    /// DRAM command clock in MHz (data is transferred at double rate).
    pub dram_clock_mhz: f64,
    /// Processor clock in MHz, used to convert DRAM cycles to CPU cycles.
    pub cpu_clock_mhz: f64,
    /// CAS latency (column access) in DRAM cycles.
    pub t_cas: u64,
    /// RAS-to-CAS delay (activate) in DRAM cycles.
    pub t_rcd: u64,
    /// Row precharge time in DRAM cycles.
    pub t_rp: u64,
    /// Minimum row-active time in DRAM cycles.
    pub t_ras: u64,
    /// Burst length in bus transfers (BL8 = 8 transfers = 64 bytes on a
    /// 64-bit bus); the burst occupies `burst_length / 2` DRAM command cycles.
    pub burst_length: u64,
    /// Extra controller/queuing latency applied once per request, in DRAM
    /// cycles.  Models the memory-controller pipeline that DRAMSim2 charges.
    pub controller_latency: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 16384,
            columns_per_row: 1024,
            bus_bytes: 8,
            dram_clock_mhz: 667.0,
            cpu_clock_mhz: 1300.0,
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 24,
            burst_length: 8,
            controller_latency: 8,
        }
    }
}

impl DramConfig {
    /// Bytes held in one DRAM row of one bank.
    pub fn row_bytes(&self) -> usize {
        self.columns_per_row * self.bus_bytes
    }

    /// Bytes transferred by one burst (64 bytes for BL8 on a 64-bit bus).
    pub fn burst_bytes(&self) -> usize {
        self.bus_bytes * self.burst_length as usize
    }

    /// DRAM command cycles occupied on the data bus by one burst.
    pub fn burst_cycles(&self) -> u64 {
        // Double data rate: two transfers per command cycle.
        self.burst_length / 2
    }

    /// Total capacity of the configured memory system in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.channels * self.ranks_per_channel * self.banks_per_rank) as u64
            * self.rows_per_bank as u64
            * self.row_bytes() as u64
    }

    /// Peak data bandwidth of the whole memory system in bytes per second.
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        self.channels as f64 * self.dram_clock_mhz * 1e6 * 2.0 * self.bus_bytes as f64
    }

    /// Converts a count of DRAM command cycles to processor cycles.
    pub fn dram_to_cpu_cycles(&self, dram_cycles: u64) -> u64 {
        ((dram_cycles as f64) * self.cpu_clock_mhz / self.dram_clock_mhz).ceil() as u64
    }

    /// Converts DRAM cycles to nanoseconds.
    pub fn dram_cycles_to_ns(&self, dram_cycles: u64) -> f64 {
        dram_cycles as f64 * 1000.0 / self.dram_clock_mhz
    }

    /// Number of banks across the whole system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.banks_per_rank, 8);
        assert_eq!(cfg.rows_per_bank, 16384);
        assert_eq!(cfg.columns_per_row, 1024);
        // ~10.67 GB/s per channel.
        let per_channel = cfg.peak_bandwidth_bytes_per_sec() / cfg.channels as f64 / 1e9;
        assert!((per_channel - 10.672).abs() < 0.05, "got {per_channel}");
    }

    #[test]
    fn row_and_burst_geometry() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.row_bytes(), 8192);
        assert_eq!(cfg.burst_bytes(), 64);
        assert_eq!(cfg.burst_cycles(), 4);
    }

    #[test]
    fn capacity_scales_with_channels() {
        let one = DramConfig {
            channels: 1,
            ..DramConfig::default()
        };
        let four = DramConfig {
            channels: 4,
            ..DramConfig::default()
        };
        assert_eq!(four.capacity_bytes(), 4 * one.capacity_bytes());
        // One channel of the default geometry is 1 GiB.
        assert_eq!(one.capacity_bytes(), 1 << 30);
    }

    #[test]
    fn cycle_conversion_uses_clock_ratio() {
        let cfg = DramConfig::default();
        // 667 DRAM cycles is 1 us, i.e. 1300 CPU cycles at 1.3 GHz.
        assert_eq!(cfg.dram_to_cpu_cycles(667), 1300);
        assert!((cfg.dram_cycles_to_ns(667) - 1000.0).abs() < 1.0);
    }
}
