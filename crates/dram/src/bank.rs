//! Per-bank row-buffer state machine.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// The state of a single DRAM bank: which row (if any) is open in its row
/// buffer and when the bank next becomes available for a new command.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BankState {
    /// Currently open row, if any.
    open_row: Option<usize>,
    /// DRAM cycle at which the bank can accept the next column command.
    ready_cycle: u64,
    /// Cycle at which the currently open row was activated (for tRAS).
    activate_cycle: u64,
}

/// Outcome of issuing a column access to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccess {
    /// Cycle at which data begins transferring on the bus.
    pub data_start: u64,
    /// Whether the access hit the open row buffer.
    pub row_hit: bool,
}

impl BankState {
    /// Issues a column access to `row` at time `now` (DRAM cycles), returning
    /// when the data transfer may begin and whether it was a row-buffer hit.
    ///
    /// The model serialises commands within a bank (tRCD/tRP/tRAS honoured)
    /// but lets different banks proceed independently; the caller arbitrates
    /// the shared data bus.
    pub fn access(&mut self, row: usize, now: u64, cfg: &DramConfig) -> BankAccess {
        let start = now.max(self.ready_cycle);
        match self.open_row {
            Some(open) if open == row => {
                let data_start = start + cfg.t_cas;
                self.ready_cycle = start + cfg.burst_cycles();
                BankAccess {
                    data_start,
                    row_hit: true,
                }
            }
            Some(_) => {
                // Precharge (respecting tRAS), activate, then CAS.
                let precharge_start = start.max(self.activate_cycle + cfg.t_ras);
                let activate = precharge_start + cfg.t_rp;
                let data_start = activate + cfg.t_rcd + cfg.t_cas;
                self.open_row = Some(row);
                self.activate_cycle = activate;
                self.ready_cycle = activate + cfg.t_rcd + cfg.burst_cycles();
                BankAccess {
                    data_start,
                    row_hit: false,
                }
            }
            None => {
                let activate = start;
                let data_start = activate + cfg.t_rcd + cfg.t_cas;
                self.open_row = Some(row);
                self.activate_cycle = activate;
                self.ready_cycle = activate + cfg.t_rcd + cfg.burst_cycles();
                BankAccess {
                    data_start,
                    row_hit: false,
                }
            }
        }
    }

    /// Returns the currently open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        self.open_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_row_miss_with_activate_latency() {
        let cfg = DramConfig::default();
        let mut bank = BankState::default();
        let acc = bank.access(5, 0, &cfg);
        assert!(!acc.row_hit);
        assert_eq!(acc.data_start, cfg.t_rcd + cfg.t_cas);
        assert_eq!(bank.open_row(), Some(5));
    }

    #[test]
    fn second_access_to_same_row_is_a_hit() {
        let cfg = DramConfig::default();
        let mut bank = BankState::default();
        let first = bank.access(5, 0, &cfg);
        let second = bank.access(5, first.data_start, &cfg);
        assert!(second.row_hit);
        assert!(second.data_start > first.data_start);
    }

    #[test]
    fn row_conflict_pays_precharge_and_activate() {
        let cfg = DramConfig::default();
        let mut bank = BankState::default();
        let first = bank.access(5, 0, &cfg);
        let conflict = bank.access(6, first.data_start, &cfg);
        assert!(!conflict.row_hit);
        // Must include at least tRP + tRCD + tCAS beyond the issue time.
        assert!(conflict.data_start >= first.data_start + cfg.t_rp + cfg.t_rcd + cfg.t_cas);
        assert_eq!(bank.open_row(), Some(6));
    }

    #[test]
    fn hits_pipeline_at_burst_rate() {
        let cfg = DramConfig::default();
        let mut bank = BankState::default();
        bank.access(1, 0, &cfg);
        let a = bank.access(1, 1000, &cfg);
        let b = bank.access(1, 1000, &cfg);
        // Back-to-back hits issued at the same time are separated by the
        // burst occupancy, not the full CAS latency.
        assert_eq!(b.data_start - a.data_start, cfg.burst_cycles());
    }
}
