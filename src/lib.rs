//! Workspace-root crate for the Freecursive ORAM reproduction.
//!
//! This package exists to own the cross-crate integration tests (`tests/`)
//! and the runnable examples (`examples/`); the functionality lives in the
//! member crates:
//!
//! * [`freecursive`] — the ORAM frontend, the [`freecursive::Oram`] trait,
//!   and the [`freecursive::OramBuilder`] entry point;
//! * [`path_oram`] — the Path ORAM backend substrate behind the
//!   [`path_oram::OramBackend`] seam (plus the insecure test backend);
//! * [`posmap`], [`oram_crypto`] — PosMap structures and crypto primitives;
//! * [`oram_sim`], [`cache_sim`], [`trace_gen`] — the trace-driven timing
//!   simulator stack used to regenerate the paper's figures.

#![forbid(unsafe_code)]

pub use cache_sim;
pub use freecursive;
pub use oram_crypto;
pub use oram_sim;
pub use path_oram;
pub use posmap;
pub use trace_gen;
