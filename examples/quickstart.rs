//! Quickstart: build the full Freecursive ORAM controller (PLB + compressed
//! PosMap + PMMAC) through the `OramBuilder`, store and retrieve data, batch
//! requests, and inspect the statistics the paper's evaluation is built from.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use freecursive::{Oram, OramBuilder, Request, SchemePoint};
use path_oram::OramBackend as _;

fn main() -> Result<(), freecursive::FreecursiveError> {
    // A 1 MB ORAM (2^14 blocks of 64 bytes) with the complete PIC_X32 design:
    // PosMap Lookaside Buffer, compressed PosMap, and PMMAC integrity.
    let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(1 << 14)
        .onchip_entries(128)
        .build_freecursive()?;

    println!("== Freecursive ORAM quickstart ==");
    println!(
        "ORAM: {} blocks of {} bytes, unified tree with {} levels (L = {}), X = {}",
        oram.num_blocks(),
        oram.block_bytes(),
        oram.backend().params().levels(),
        oram.backend().params().leaf_level(),
        oram.config().x(),
    );
    println!(
        "Recursion: H = {} ORAM levels, on-chip PosMap entries = {}",
        oram.num_levels(),
        oram.addressing().required_onchip_entries(),
    );

    // Write a few blocks and read them back.
    for i in 0..32u64 {
        let data = vec![i as u8; 64];
        oram.write(i * 100, &data)?;
    }
    for i in 0..32u64 {
        let data = oram.read(i * 100)?;
        assert_eq!(data, vec![i as u8; 64]);
    }
    println!("\n32 blocks written and read back correctly (MACs verified).");

    // The batched path serves a mixed request stream in one call.
    let batch: Vec<Request> = (0..64u64)
        .map(|i| {
            if i % 2 == 0 {
                Request::Read {
                    addr: i * 100 % (1 << 14),
                }
            } else {
                Request::Write {
                    addr: i,
                    data: vec![0xB0 | (i as u8 & 0xF); 64],
                }
            }
        })
        .collect();
    let responses = oram.access_batch(&batch)?;
    println!("access_batch served {} requests in order.", responses.len());

    // A sequential scan shows the PLB at work: almost no PosMap accesses.
    for addr in 0..2000u64 {
        oram.read(addr)?;
    }
    let stats = oram.stats();
    println!("\nAfter a 2000-block sequential scan:");
    println!("  frontend requests        : {}", stats.frontend_requests);
    println!(
        "  data backend accesses    : {}",
        stats.data_backend_accesses
    );
    println!(
        "  posmap backend accesses  : {}",
        stats.posmap_backend_accesses
    );
    println!(
        "  posmap accesses / request: {:.3} (a PLB-less Recursive ORAM would need {})",
        stats.posmap_backend_accesses as f64 / stats.frontend_requests as f64,
        oram.num_levels() - 1,
    );
    println!(
        "  posmap share of traffic  : {:.1}%",
        stats.posmap_bandwidth_fraction().unwrap_or(0.0) * 100.0
    );
    println!(
        "  PMMAC hash reduction vs Merkle tree: {:.0}x",
        stats.hash_reduction_factor().unwrap_or(0.0)
    );
    println!(
        "  integrity violations     : {}",
        stats.integrity_violations
    );
    Ok(())
}
