//! Active-adversary demonstration: PMMAC detecting tampering and replay, and
//! the §6.4 one-time-pad weakness of per-bucket-seed encryption that the
//! paper's global-seed scheme fixes.
//!
//! Run with:
//! ```text
//! cargo run --release -p bench --example integrity_attack
//! ```

use freecursive::{Adversary, FreecursiveError, Oram, OramBuilder, SchemePoint};
use path_oram::encryption::{BucketCipher, EncryptionMode};
use path_oram::OramParams;

fn pic_oram() -> Result<freecursive::FreecursiveOram, FreecursiveError> {
    OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(1 << 12)
        .onchip_entries(64)
        .build_freecursive()
}

fn pmmac_detects_corruption() -> Result<(), FreecursiveError> {
    println!("== 1. PMMAC detects data corruption ==");
    let mut oram = pic_oram()?;
    let mut adversary = Adversary::new(7);

    for addr in 0..64u64 {
        oram.write(addr, &[addr as u8; 64])?;
    }
    let corrupted = adversary.corrupt_all_buckets(&mut oram, 120);
    println!("   adversary flipped one byte in {corrupted} ORAM tree buckets");

    let mut detected = false;
    for addr in 0..64u64 {
        match oram.read(addr) {
            Ok(data) => assert_eq!(data, vec![addr as u8; 64], "silently wrong data!"),
            Err(e) => {
                println!("   read of block {addr} raised: {e}");
                detected = true;
                break;
            }
        }
    }
    assert!(detected, "tampering must be detected");
    println!("   => tampering detected, processor would raise an exception\n");
    Ok(())
}

fn pmmac_detects_replay() -> Result<(), FreecursiveError> {
    println!("== 2. PMMAC detects replay of stale memory ==");
    let mut oram = pic_oram()?;
    let adversary = Adversary::new(8);

    oram.write(5, &[0x01; 64])?;
    // Push the block out to the tree by touching other addresses.
    for addr in 100..400u64 {
        oram.read(addr)?;
    }
    let snapshot = adversary.snapshot(&oram);
    println!("   adversary snapshotted {} buckets", snapshot.len());

    for _ in 0..4 {
        oram.write(5, &[0x02; 64])?;
    }
    for addr in 400..700u64 {
        oram.read(addr)?;
    }
    adversary.replay(&mut oram, &snapshot);
    println!("   adversary rolled DRAM back to the snapshot");
    match oram.read(5) {
        Ok(data) => {
            assert_eq!(data, vec![0x02; 64], "stale data accepted!");
            println!("   block never left trusted storage; fresh value still returned");
        }
        Err(e) => println!("   read of block 5 raised: {e}"),
    }
    println!("   => the stale snapshot is never silently accepted\n");
    Ok(())
}

fn one_time_pad_replay() {
    println!("== 3. The 6.4 pad-replay weakness of per-bucket seeds ==");
    let params = OramParams::new(1 << 10, 64, 4);

    // Vulnerable discipline ([26]): the seed lives in the bucket header and
    // the adversary can roll it back, forcing pad reuse.
    let mut vulnerable = BucketCipher::new(EncryptionMode::PerBucketSeed, [1u8; 16]);
    let secret_a = {
        let mut img = vec![0u8; params.bucket_bytes()];
        img[64] = 0x41;
        img
    };
    let secret_b = {
        let mut img = vec![0u8; params.bucket_bytes()];
        img[64] = 0x7A;
        img
    };
    let mut ct_a = secret_a.clone();
    vulnerable.seal(9, &mut ct_a);
    let mut ct_b = secret_b.clone();
    ct_b[..8].copy_from_slice(&0u64.to_le_bytes()); // adversary rolled the seed back
    vulnerable.seal(9, &mut ct_b);
    let leaked = ct_a[64] ^ ct_b[64];
    println!(
        "   per-bucket seeds: XOR of ciphertext bytes = {:#04x}, XOR of plaintexts = {:#04x} (leaked!)",
        leaked,
        secret_a[64] ^ secret_b[64]
    );
    assert_eq!(leaked, secret_a[64] ^ secret_b[64]);

    // The paper's fix: a controller-internal global seed the adversary cannot
    // influence.
    let mut fixed = BucketCipher::new(EncryptionMode::GlobalSeed, [1u8; 16]);
    let mut ct_a = secret_a.clone();
    fixed.seal(9, &mut ct_a);
    let mut ct_b = secret_b.clone();
    ct_b[..8].copy_from_slice(&0u64.to_le_bytes());
    fixed.seal(9, &mut ct_b);
    println!(
        "   global seed:      XOR of ciphertext bytes = {:#04x} (independent of the plaintexts)",
        ct_a[64] ^ ct_b[64]
    );
    println!("   => the global-seed scheme never reuses a pad\n");
}

fn main() -> Result<(), FreecursiveError> {
    pmmac_detects_corruption()?;
    pmmac_detects_replay()?;
    one_time_pad_replay();
    println!("All three adversarial scenarios behaved as the paper requires.");
    Ok(())
}
