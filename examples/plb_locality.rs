//! PLB locality exploration: how program address locality translates into
//! skipped PosMap ORAM accesses (the core idea of §4), and why the unified
//! ORAM tree is needed for security (§4.1.2).
//!
//! Run with:
//! ```text
//! cargo run --release -p bench --example plb_locality
//! ```

use freecursive::{Oram, OramBuilder, SchemePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_pattern(name: &str, addresses: &[u64]) -> Result<(), freecursive::FreecursiveError> {
    let mut oram = OramBuilder::for_scheme(SchemePoint::PcX32)
        .num_blocks(1 << 14)
        .onchip_entries(64)
        .build_freecursive()?;
    let x = oram.config().x();
    for &addr in addresses {
        oram.read(addr)?;
    }
    let stats = oram.stats();
    let per_request = stats.posmap_backend_accesses as f64 / stats.frontend_requests as f64;
    println!(
        "{name:<28} posmap accesses/request = {per_request:.3}   plb hit rate = {:.2}   (H-1 = {})",
        stats.plb.hit_rate().unwrap_or(0.0),
        oram.num_levels() - 1
    );
    // The two programs of §4.1.2: without a unified tree, the *set of ORAMs
    // accessed* would differ between patterns and leak which one ran.  With
    // the unified tree the adversary sees only path accesses to one tree.
    let _ = x;
    Ok(())
}

fn main() -> Result<(), freecursive::FreecursiveError> {
    println!("== PLB effectiveness vs program address locality (PC_X32, X = 32) ==\n");

    // Program A of §4.1.2: a unit-stride scan.
    let unit_stride: Vec<u64> = (0..4000u64).collect();
    run_pattern("unit stride (program A)", &unit_stride)?;

    // Program B of §4.1.2: a stride-X scan that misses the PLB constantly.
    let stride_x: Vec<u64> = (0..4000u64).map(|i| (i * 32) % (1 << 14)).collect();
    run_pattern("stride X=32 (program B)", &stride_x)?;

    // A fully random pattern.
    let mut rng = StdRng::seed_from_u64(1);
    let random: Vec<u64> = (0..4000u64).map(|_| rng.gen_range(0..1 << 14)).collect();
    run_pattern("uniform random", &random)?;

    // A small hot set: everything ends up PLB-resident.
    let hot: Vec<u64> = (0..4000u64).map(|i| i % 512).collect();
    run_pattern("512-block hot set", &hot)?;

    println!(
        "\nBoth programs produce the *same kind* of observable trace (path accesses to the\n\
         single unified tree); only the number of accesses differs — exactly the leakage\n\
         the security definition permits ( 4.3).  Without the unified tree, program B's\n\
         per-level PosMap ORAM accesses would reveal its stride."
    );
    Ok(())
}
