//! Secure-processor simulation: replay a synthetic SPEC-like workload through
//! the Table 1 processor model with ORAM main memory, and reproduce the kind
//! of slowdown comparison shown in Figure 6 — for a handful of benchmarks and
//! design points.
//!
//! Run with:
//! ```text
//! cargo run --release -p bench --example secure_processor
//! ```

use oram_sim::runner::{run_benchmark, SimulationConfig};
use oram_sim::scheme::SchemePoint;
use trace_gen::SpecBenchmark;

fn main() {
    let cfg = SimulationConfig {
        memory_accesses: 100_000,
        latency_samples: 20,
        ..SimulationConfig::paper_default()
    };

    let benchmarks = [
        SpecBenchmark::Libquantum,
        SpecBenchmark::Mcf,
        SpecBenchmark::Bzip2,
        SpecBenchmark::Sjeng,
    ];
    let schemes = [SchemePoint::RX8, SchemePoint::PcX32, SchemePoint::PicX32];

    println!("== Secure processor with Freecursive ORAM main memory ==");
    println!(
        "4 GB ORAM, 64 B blocks, Z=4, 2 DRAM channels, 64 KB PLB, {} memory accesses per run\n",
        cfg.memory_accesses
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>14}",
        "benchmark", "R_X8", "PC_X32", "PIC_X32", "MPKI (insecure)"
    );
    for benchmark in benchmarks {
        let mut slowdowns = Vec::new();
        let mut mpki = 0.0;
        for scheme in schemes {
            let run = run_benchmark(benchmark, scheme, &cfg);
            mpki = run.insecure.mpki();
            slowdowns.push(run.slowdown);
        }
        println!(
            "{:<12} {:>9.2}x {:>9.2}x {:>9.2}x {:>14.1}",
            benchmark.label(),
            slowdowns[0],
            slowdowns[1],
            slowdowns[2],
            mpki
        );
    }
    println!(
        "\nThe PLB + compressed PosMap (PC_X32) removes most of the Recursive ORAM \
         overhead;\nadding PMMAC integrity (PIC_X32) costs only a few percent more."
    );
}
